//! Microbenchmarks of the simulator substrate itself: per-cycle cost of an
//! idle mesh, a saturated mesh, and the Table 1 configuration check.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::table1;
use noc_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

struct Flood {
    rate: f64,
}

impl TrafficSource for Flood {
    fn num_apps(&self) -> usize {
        1
    }
    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if !rng.random_bool(self.rate) {
            return None;
        }
        let mut dst = rng.random_range(0..63u16);
        if dst >= node {
            dst += 1;
        }
        Some(NewPacket {
            dst,
            app: 0,
            class: 0,
            size: 5,
            reply: None,
        })
    }
}

/// A fresh single-region mesh driven by `Flood { rate }` (or idle when
/// `rate == 0.0`), optionally forced onto the exhaustive-scan tick path.
/// `oracle`: `None` = build-default resolution, `Some(false)` = explicitly
/// disabled (the zero-cost early-out), `Some(true)` = forced per-cycle
/// checking.
fn flood_net_oracle(rate: f64, exhaustive: bool, oracle: Option<bool>) -> Network {
    let mut cfg = SimConfig::table1();
    match oracle {
        Some(true) => cfg.oracle = OracleConfig::forced(),
        Some(false) => cfg.oracle.enabled = Some(false),
        None => {}
    }
    let source: Box<dyn TrafficSource> = if rate > 0.0 {
        Box::new(Flood { rate })
    } else {
        Box::new(NoTraffic)
    };
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        source,
        1,
    );
    net.set_force_exhaustive(exhaustive);
    net
}

fn flood_net(rate: f64, exhaustive: bool) -> Network {
    flood_net_oracle(rate, exhaustive, None)
}

/// The flood mesh with the transient-fault machinery live at `ber` (no
/// permanent events), against the default build's empty timeline.
fn flood_net_fault(rate: f64, ber: f64) -> Network {
    let mut cfg = SimConfig::table1();
    cfg.fault = FaultTimeline {
        transient_ber: ber,
        seed: 7,
        events: Vec::new(),
    };
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(Flood { rate }),
        1,
    );
    net.set_force_exhaustive(false);
    net
}

/// Print what the kernel fast paths elide at this load.
fn report_skip(label: &str, rate: f64) {
    let mut net = flood_net(rate, false);
    net.run(1_000);
    let visits = net.cycle() * net.cfg.num_nodes() as u64;
    eprintln!(
        "[{label}] {}",
        metrics::report::kernel_summary(
            visits * 3,
            net.stats.router_cycles_skipped,
            visits,
            net.stats.state_updates_skipped,
            net.cycle(),
            net.stats.idle_cycles_skipped,
        )
    );
}

/// ~5% and ~80% of this mesh's saturation load, in packets/node/cycle.
/// Saturation for 5-flit uniform-random traffic on the Table 1 mesh sits
/// near 0.06 packets/node/cycle.
const LOW_RATE: f64 = 0.003;
const HIGH_RATE: f64 = 0.048;

fn micro(c: &mut Criterion) {
    eprintln!("{}", table1::table().render());
    report_skip("low_load", LOW_RATE);
    report_skip("high_load", HIGH_RATE);

    let mut g = c.benchmark_group("router_micro");
    g.sample_size(20);
    g.bench_function("idle_1k_cycles", |b| {
        b.iter(|| {
            let cfg = SimConfig::table1();
            let mut net = Network::new(
                cfg,
                RegionMap::single(&SimConfig::table1()),
                Box::new(DuatoLocalAdaptive),
                Box::new(RoundRobin),
                Box::new(NoTraffic),
                1,
            );
            net.run(1_000);
            net.cycle()
        });
    });
    // The same idle mesh with the fast-forward disabled: measures what the
    // event-driven jump saves over plain (active-set) ticking.
    g.bench_function("idle_1k_cycles_no_ff", |b| {
        b.iter(|| {
            let mut net = flood_net(0.0, false);
            net.set_fast_forward(false);
            net.run(1_000);
            net.cycle()
        });
    });
    g.bench_function("saturated_1k_cycles", |b| {
        b.iter(|| {
            let cfg = SimConfig::table1();
            let mut net = Network::new(
                cfg,
                RegionMap::single(&SimConfig::table1()),
                Box::new(DuatoLocalAdaptive),
                Box::new(RoundRobin),
                Box::new(Flood { rate: 0.3 }),
                1,
            );
            net.run(1_000);
            net.stats.recorder.delivered()
        });
    });
    // The acceptance pair for the active-set fast path: at ~5% of
    // saturation the fast tick must beat the exhaustive scan by >=2x; at
    // ~80% load it must stay within 5%.
    for (label, rate) in [("low_load", LOW_RATE), ("high_load", HIGH_RATE)] {
        for (mode, exhaustive) in [("fast", false), ("exhaustive", true)] {
            g.bench_function(&format!("tick_1k_{label}_{mode}"), |b| {
                b.iter(|| {
                    let mut net = flood_net(rate, exhaustive);
                    net.run(1_000);
                    net.stats.recorder.delivered()
                });
            });
        }
        // The oracle cost model: explicitly disabled must be within noise
        // of the build default (one null-check per tick); forced per-cycle
        // checking shows the full instrumentation cost.
        for (mode, oracle) in [("oracle_off", Some(false)), ("oracle_forced", Some(true))] {
            g.bench_function(&format!("tick_1k_{label}_{mode}"), |b| {
                b.iter(|| {
                    let mut net = flood_net_oracle(rate, false, oracle);
                    net.run(1_000);
                    net.stats.recorder.delivered()
                });
            });
        }
        // The fault-machinery cost model: an empty timeline is proven
        // off-path by the golden digests, so the interesting number is
        // the live ARQ draw — per-traversal corruption at BER 1e-3 —
        // against the `tick_1k_{label}_fast` baseline above.
        g.bench_function(&format!("tick_1k_{label}_fault_ber1e3"), |b| {
            b.iter(|| {
                let mut net = flood_net_fault(rate, 1e-3);
                net.run(1_000);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
