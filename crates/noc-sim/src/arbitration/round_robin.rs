//! RO_RR: region-oblivious round-robin (the paper's baseline).

use super::{ArbReq, ArbStage, PriorityPolicy};
use crate::router::Router;
use crate::vc::VcClass;

/// All requests carry equal priority; the rotating arbiter alone decides.
/// This is the `RO_RR` baseline of §V.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl PriorityPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "RO_RR"
    }

    fn priority(
        &self,
        _stage: ArbStage,
        _router: &Router,
        _out_vc: Option<VcClass>,
        _req: &ArbReq,
    ) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn constant_priority() {
        let cfg = SimConfig::table1();
        let r = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        let p = RoundRobin;
        let req = ArbReq {
            app: 0,
            class: 0,
            birth: 5,
            inject: 6,
            is_native: true,
        };
        let req2 = ArbReq {
            app: 3,
            birth: 999,
            is_native: false,
            ..req
        };
        assert_eq!(
            p.priority(ArbStage::SaIn, &r, None, &req),
            p.priority(ArbStage::SaOut, &r, None, &req2)
        );
        assert_eq!(p.name(), "RO_RR");
    }
}
