//! Property-based tests of the simulator substrate.

use noc_sim::arbitration::arbitrate_rr;
use noc_sim::network::Network;
use noc_sim::prelude::*;
use proptest::prelude::*;

fn scripted_net(events: Vec<(u64, NodeId, NewPacket)>, routing: Routing, seed: u64) -> Network {
    let cfg = SimConfig::table1();
    let r: Box<dyn RoutingAlgorithm> = match routing {
        Routing::Xy => Box::new(XyRouting),
        Routing::Local => Box::new(DuatoLocalAdaptive),
        Routing::Dbar => Box::new(DbarAdaptive),
    };
    Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        r,
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, events)),
        seed,
    )
}

#[derive(Debug, Clone, Copy)]
enum Routing {
    Xy,
    Local,
    Dbar,
}

fn any_routing() -> impl Strategy<Value = Routing> {
    prop_oneof![Just(Routing::Xy), Just(Routing::Local), Just(Routing::Dbar)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scripted packet is delivered, exactly once, over a route of
    /// exactly Manhattan length, under every routing algorithm.
    #[test]
    fn all_packets_delivered_minimally(
        routing in any_routing(),
        pairs in proptest::collection::vec((0u16..64, 0u16..64, 1u32..=5u32), 1..40),
        seed in 0u64..100,
    ) {
        let cfg = SimConfig::table1();
        let mut events = Vec::new();
        let mut total_hops = 0u64;
        let mut count = 0u64;
        for (i, &(src, dst, size)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            events.push((
                (i as u64) * 2,
                src,
                NewPacket { dst, app: 0, class: 0, size, reply: None },
            ));
            total_hops += cfg.coord_of(src).hops_to(cfg.coord_of(dst)) as u64;
            count += 1;
        }
        prop_assume!(count > 0);
        let mut net = scripted_net(events, routing, seed);
        net.run(4_000);
        prop_assert!(net.is_drained(), "{} flits stuck", net.flits_in_network());
        prop_assert_eq!(net.stats.recorder.delivered(), count);
        let measured: f64 = net.stats.recorder.app(0).hops.sum();
        prop_assert_eq!(measured as u64, total_hops, "non-minimal routes taken");
    }

    /// The rotating arbiter is work-conserving and fair: with equal
    /// priorities, over `k * n` arbitrations each of `n` persistent
    /// requestors wins exactly `k` times.
    #[test]
    fn arbiter_exact_fairness(n in 1usize..8, k in 1usize..10) {
        let reqs: Vec<(u64, usize)> = (0..n).map(|i| (1, i)).collect();
        let mut wins = vec![0usize; n];
        let mut ptr = 0;
        for _ in 0..n * k {
            let w = arbitrate_rr(&reqs, n, &mut ptr).unwrap();
            wins[reqs[w].1] += 1;
        }
        prop_assert!(wins.iter().all(|&w| w == k), "unfair wins {wins:?}");
    }

    /// Strict priority: the arbiter never picks a lower-priority request.
    #[test]
    fn arbiter_never_inverts_priority(
        reqs in proptest::collection::vec((0u64..5, 0usize..10), 1..10),
        ptr0 in 0usize..10,
    ) {
        // De-duplicate slot keys (hardware has one request per slot).
        let mut seen = std::collections::BTreeSet::new();
        let reqs: Vec<(u64, usize)> =
            reqs.into_iter().filter(|&(_, k)| seen.insert(k)).collect();
        prop_assume!(!reqs.is_empty());
        let max = reqs.iter().map(|r| r.0).max().unwrap();
        let mut ptr = ptr0;
        let w = arbitrate_rr(&reqs, 10, &mut ptr).unwrap();
        prop_assert_eq!(reqs[w].0, max);
    }

    /// Region grids partition the mesh: every node belongs to exactly one
    /// region, regions are contiguous rectangles, and `is_native` agrees
    /// with `app_of`.
    #[test]
    fn region_grid_partitions(cols in 1u8..=4, rows in 1u8..=4) {
        prop_assume!(8 % cols == 0 && 8 % rows == 0);
        let cfg = SimConfig::table1();
        let m = RegionMap::grid(&cfg, cols, rows);
        let napps = (cols * rows) as usize;
        prop_assert_eq!(m.num_apps(), napps);
        let total: usize = (0..napps).map(|a| m.nodes_of(a as u8).len()).sum();
        prop_assert_eq!(total, 64);
        for node in 0..64u16 {
            let app = m.app_of(node);
            prop_assert!((app as usize) < napps);
            prop_assert!(m.is_native(node, app));
            prop_assert!(napps == 1 || !m.is_native(node, (app + 1) % napps as u8));
        }
        // Every region has the same size (uniform grid).
        let expect = 64 / napps;
        for a in 0..napps {
            prop_assert_eq!(m.nodes_of(a as u8).len(), expect);
        }
    }

    /// The VC layout partitions each port: every VC is either the escape VC
    /// of exactly one class or an adaptive VC with exactly one tag, and the
    /// regional/global split matches the config.
    #[test]
    fn vc_layout_partition(classes in 1usize..=4, adaptive in 1usize..=6, regional in 0usize..=6) {
        prop_assume!(regional <= adaptive);
        let mut cfg = SimConfig::table1();
        cfg.num_classes = classes;
        cfg.adaptive_vcs = adaptive;
        cfg.regional_vcs = regional;
        prop_assert!(cfg.validate().is_ok());
        let mut escapes = 0;
        let mut reg = 0;
        let mut glob = 0;
        for vc in 0..cfg.vcs_per_port() {
            match cfg.vc_class(vc) {
                VcClass::Escape { class } => {
                    prop_assert_eq!(cfg.escape_vc(class), vc);
                    escapes += 1;
                }
                VcClass::Adaptive { tag: VcTag::Regional } => reg += 1,
                VcClass::Adaptive { tag: VcTag::Global } => glob += 1,
            }
        }
        prop_assert_eq!(escapes, classes);
        prop_assert_eq!(reg, regional);
        prop_assert_eq!(glob, adaptive - regional);
    }

    /// Request/reply closed loops complete: every scripted request results
    /// in exactly two deliveries and the network drains.
    #[test]
    fn replies_always_complete(
        pairs in proptest::collection::vec((0u16..64, 0u16..64), 1..15),
        service in 1u64..200,
        seed in 0u64..100,
    ) {
        let mut events = Vec::new();
        let mut count = 0u64;
        for (i, &(src, dst)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            events.push((
                (i as u64) * 3,
                src,
                NewPacket {
                    dst,
                    app: 0,
                    class: 0,
                    size: 1,
                    reply: Some(ReplySpec { service_latency: service, size: 5, class: 0 }),
                },
            ));
            count += 1;
        }
        prop_assume!(count > 0);
        let mut net = scripted_net(events, Routing::Local, seed);
        net.run(6_000);
        prop_assert!(net.is_drained());
        prop_assert_eq!(net.stats.recorder.delivered(), count * 2);
    }
}

/// Nodes inside DBAR's truncated lookahead window along direction `p` from
/// `src`: every router stepped over until the destination's coordinate in
/// the traversed dimension, stopping at (and including) the first router of
/// a foreign region. Mirrors `DbarAdaptive::lookahead`'s read set.
fn dbar_window(
    cfg: &noc_sim::config::SimConfig,
    region: &RegionMap,
    src: Coord,
    dst: Coord,
    p: Port,
) -> Vec<NodeId> {
    use noc_sim::routing::step;
    let my_region = region.app_of(cfg.node_at(src));
    let mut c = src;
    let mut window = Vec::new();
    loop {
        let at_dst_dim = match p {
            noc_sim::ids::PORT_EAST | noc_sim::ids::PORT_WEST => c.x == dst.x,
            _ => c.y == dst.y,
        };
        if at_dst_dim {
            break;
        }
        c = step(c, p);
        let node = cfg.node_at(c);
        window.push(node);
        if region.app_of(node) != my_region {
            break;
        }
    }
    window
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DBAR's defining property (paper §III.B): congestion generated
    /// *outside* the truncated lookahead windows — in particular anywhere
    /// beyond the packet's region boundary — never influences the selection
    /// between candidate directions. Perturbing any set of out-of-window
    /// nodes arbitrarily must leave the choice unchanged.
    #[test]
    fn dbar_truncation_ignores_outside_region_congestion(
        sx in 0u8..8, sy in 0u8..8,
        dx in 0u8..8, dy in 0u8..8,
        cols in prop_oneof![Just(1u8), Just(2), Just(4)],
        rows in prop_oneof![Just(1u8), Just(2), Just(4)],
        base in proptest::collection::vec(0u16..12, 64..65),
        noise in proptest::collection::vec(0u16..500, 64..65),
    ) {
        // Two productive directions — otherwise there is no selection.
        prop_assume!(sx != dx && sy != dy);
        let cfg = SimConfig::table1();
        let region = RegionMap::grid(&cfg, cols, rows);
        let src = Coord { x: sx, y: sy };
        let dst = Coord { x: dx, y: dy };
        let router = noc_sim::router::Router::new(
            &cfg,
            cfg.node_at(src),
            src,
            region.app_of(cfg.node_at(src)),
        );
        let dbar = DbarAdaptive;
        let [a, b] = noc_sim::routing::productive_ports(src, dst);
        let cands = [a.unwrap(), b.unwrap()];

        let pick = |congestion: &[u16]| {
            let ctx = noc_sim::routing::SelectCtx {
                cfg: &cfg,
                router: &router,
                dst,
                region: &region,
                congestion,
            };
            noc_sim::routing::RoutingAlgorithm::select(&dbar, &ctx, &cands)
        };
        let baseline = pick(&base);

        // Perturb every node *outside* both lookahead windows.
        let mut in_window = [false; 64];
        for &p in &cands {
            for n in dbar_window(&cfg, &region, src, dst, p) {
                in_window[n as usize] = true;
            }
        }
        let mut perturbed = base.clone();
        for n in 0..64 {
            if !in_window[n] {
                perturbed[n] = noise[n];
            }
        }
        prop_assert_eq!(
            pick(&perturbed), baseline,
            "outside-window congestion changed DBAR's selection \
             (src {:?} dst {:?} grid {}x{})",
            src, dst, cols, rows
        );

        // Control: the windows themselves are live — zeroing one window and
        // inflating the other must steer the choice to the zeroed side
        // whenever both windows are non-empty.
        let wa = dbar_window(&cfg, &region, src, dst, cands[0]);
        let wb = dbar_window(&cfg, &region, src, dst, cands[1]);
        if !wa.is_empty() && !wb.is_empty() {
            let mut steered = base.clone();
            for &n in &wa { steered[n as usize] = 0; }
            for &n in &wb { steered[n as usize] = 400; }
            prop_assert_eq!(pick(&steered), 0, "in-window congestion ignored");
        }
    }
}
