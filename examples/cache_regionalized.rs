//! Cooperative-cache regionalization: demonstrates how cache-locality
//! optimizations *create* a regionalized NoC (the paper's §II.A example 2)
//! and how much a region-aware network policy then helps.
//!
//! A single request/reply workload runs twice: once with data spread
//! uniformly across the chip (conventional NUCA — every L2 access is
//! potentially chip-wide) and once with 85% of the working set migrated to
//! region-local banks (cooperative caching). The example reports the
//! traffic profile and latency in both configurations, then shows RAIR's
//! added benefit on the regionalized one.
//!
//! ```text
//! cargo run --release --example cache_regionalized
//! ```

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 30_000;

/// Build the four-app workload with a given cache-locality fraction.
fn workload(cfg: &SimConfig, region: &RegionMap, local_fraction: f64) -> ParsecWorkload {
    let models = AppModel::parsec_four()
        .into_iter()
        .map(|mut m| {
            m.local_fraction = local_fraction;
            m
        })
        .collect();
    ParsecWorkload::new(cfg, region, models)
}

fn measure(scheme: &Scheme, local_fraction: f64) -> (f64, f64) {
    let cfg = SimConfig::table1_req_reply();
    let region = RegionMap::quadrants(&cfg);
    let mut net = Network::new(
        cfg.clone(),
        region.clone(),
        Routing::Local.build(),
        scheme.build(),
        Box::new(workload(&cfg, &region, local_fraction)),
        11,
    );
    net.run_warmup_measure(WARMUP, MEASURE);
    let rec = &net.stats.recorder;
    let apl = (0..4)
        .map(|a| rec.app(a).mean(LatencyKind::Network).unwrap())
        .sum::<f64>()
        / 4.0;
    let hops = (0..4).map(|a| rec.app(a).hops.mean().unwrap()).sum::<f64>() / 4.0;
    (apl, hops)
}

fn main() {
    println!("cooperative caching turns chip-wide L2 traffic into regional traffic:\n");
    println!(
        "{:<34} {:>10} {:>10}",
        "configuration", "mean APL", "mean hops"
    );
    // Conventional NUCA: only ~25% of accesses land in the local quadrant
    // (uniform banks); cooperative caching keeps 85% region-local.
    let (apl_nuca, hops_nuca) = measure(&Scheme::RoRr, 0.25);
    println!(
        "{:<34} {apl_nuca:>10.2} {hops_nuca:>10.2}",
        "uniform NUCA + RO_RR"
    );
    let (apl_coop, hops_coop) = measure(&Scheme::RoRr, 0.85);
    println!(
        "{:<34} {apl_coop:>10.2} {hops_coop:>10.2}",
        "cooperative (85% local) + RO_RR"
    );
    let (apl_rair, hops_rair) = measure(&Scheme::rair(), 0.85);
    println!(
        "{:<34} {apl_rair:>10.2} {hops_rair:>10.2}",
        "cooperative (85% local) + RA_RAIR"
    );
    println!();
    println!(
        "regionalization alone cuts average hops by {:.1}% and APL by {:.1}%;",
        (1.0 - hops_coop / hops_nuca) * 100.0,
        (1.0 - apl_coop / apl_nuca) * 100.0
    );
    println!(
        "region-aware arbitration (RAIR) changes APL by a further {:+.1}% on the RNoC.",
        (apl_rair / apl_coop - 1.0) * 100.0
    );
}
