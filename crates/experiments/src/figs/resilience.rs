//! Resilience experiment: fault rate × scheme × routing sweep under
//! link-level retransmission and one permanent link kill mid-measurement.
//!
//! For every (scheme, routing) pair the sweep runs a fault-free baseline
//! plus one run per transient BER; every faulted run additionally kills
//! one central mesh link a quarter of the way into the measurement window
//! (so the reported numbers include reroute + re-verification cost).
//! Reported per cell: delivered fraction (delivered / (delivered +
//! dropped)), latency inflation vs the same pair's fault-free baseline,
//! retransmission overhead (retransmissions per injected flit), and the
//! reconfiguration count. The sweep goes through the checkpointed runner,
//! so an interrupted `repro resilience` resumes instead of restarting.

use crate::runner::{run_one, run_parallel_checkpointed, ExpConfig, Job, RunResult};
use crate::sweep::build_network;
use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::prelude::{FaultEvent, FaultTimeline, ScheduledFault};
use rair::scheme::{Routing, Scheme};
use traffic::scenario::two_app;

/// Transient corruption rates swept (per link traversal). `0.0` is the
/// fault-free baseline each pair's inflation is measured against.
const BERS_FULL: &[f64] = &[0.0, 1e-4, 1e-3, 1e-2];
const BERS_SMOKE: &[f64] = &[0.0, 1e-3];

/// The link killed in every faulted run: a central vertical link, chosen
/// to sit inside both applications' traffic.
const KILL_ROUTER: u16 = 27;
const KILL_PORT: usize = 2; // east

/// One cell of the resilience matrix.
#[derive(Debug, Clone)]
pub struct ResilRow {
    pub scheme: String,
    pub routing: String,
    /// Transient BER of the cell; 0.0 = fault-free baseline (no link kill
    /// either).
    pub ber: f64,
    pub delivered: u64,
    pub dropped: u64,
    /// delivered / (delivered + dropped); 1.0 when nothing was dropped.
    pub delivered_fraction: f64,
    /// Mean APL over applications (NaN when nothing delivered).
    pub apl: f64,
    /// APL ratio vs the same (scheme, routing) fault-free baseline.
    pub latency_inflation: f64,
    pub flits_retransmitted: u64,
    /// Retransmissions per injected flit.
    pub retransmit_overhead: f64,
    pub packets_retried: u64,
    pub reconfigurations: u64,
    pub oracle_violations: u64,
}

/// The swept (scheme, routing) pairs.
fn pairs(smoke: bool) -> Vec<(Scheme, Routing)> {
    if smoke {
        vec![(Scheme::rair(), Routing::Local)]
    } else {
        vec![
            (Scheme::RoRr, Routing::Local),
            (Scheme::rair(), Routing::Local),
            (Scheme::rair(), Routing::Dbar),
        ]
    }
}

/// Cell label, also the checkpoint key: the windows and seed are folded
/// in so a checkpoint written by a differently-sized sweep (e.g. a smoke
/// run) can never satisfy a full one.
fn cell_label(ec: &ExpConfig, scheme: &Scheme, routing: Routing, ber: f64) -> String {
    format!(
        "{}/{}/ber={ber:.0e}/w{}m{}s{}",
        scheme.label(),
        routing.label(),
        ec.warmup,
        ec.measure,
        ec.seed
    )
}

/// The timeline for one cell: transient corruption at `ber` plus, for
/// faulted cells, one permanent link kill a quarter into measurement.
fn timeline(ec: &ExpConfig, ber: f64) -> FaultTimeline {
    if ber == 0.0 {
        return FaultTimeline::default();
    }
    FaultTimeline {
        transient_ber: ber,
        seed: ec.seed ^ 0xFA17,
        events: vec![ScheduledFault {
            cycle: ec.warmup + ec.measure / 4,
            event: FaultEvent::LinkDown {
                router: KILL_ROUTER,
                port: KILL_PORT,
            },
        }],
    }
}

/// Run the sweep. `smoke` shrinks the matrix to one pair and two rates
/// for CI. Results checkpoint under `results/` so an interrupted sweep
/// resumes.
pub fn run(ec: &ExpConfig, smoke: bool) -> Vec<ResilRow> {
    let bers: &[f64] = if smoke { BERS_SMOKE } else { BERS_FULL };
    let mut jobs = Vec::new();
    let mut cells = Vec::new();
    for (scheme, routing) in pairs(smoke) {
        for &ber in bers {
            let label = cell_label(ec, &scheme, routing, ber);
            cells.push((scheme.label().to_string(), routing, ber));
            let ec = *ec;
            let scheme = scheme.clone();
            let label2 = label.clone();
            jobs.push(Job::new(label, move || {
                let mut cfg = SimConfig::table1();
                cfg.fault = timeline(&ec, ber);
                let (region, scenario) = two_app(&cfg, 1.0, 0.04, 0.15);
                let net =
                    build_network(&cfg, &region, &scheme, routing, Box::new(scenario), ec.seed);
                run_one(label2.clone(), net, &ec)
            }));
        }
    }
    let checkpoint = std::path::Path::new("results").join("RESILIENCE.checkpoint");
    let results: Vec<RunResult> = run_parallel_checkpointed(jobs, &checkpoint)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("resilience sweep failed: {e}"));

    // Per-pair fault-free APL baselines for the inflation column.
    let baseline_apl = |scheme: &str, routing: Routing| -> f64 {
        cells
            .iter()
            .zip(&results)
            .find(|((s, r, ber), _)| s == scheme && *r == routing && *ber == 0.0)
            .map_or(f64::NAN, |(_, res)| res.mean_apl(None))
    };
    cells
        .iter()
        .zip(&results)
        .map(|((scheme, routing, ber), r)| {
            let injected = r.delivered + r.packets_dropped;
            let delivered_fraction = if injected == 0 {
                1.0
            } else {
                r.delivered as f64 / injected as f64
            };
            let apl = r.mean_apl(None);
            ResilRow {
                scheme: scheme.clone(),
                routing: routing.label().to_string(),
                ber: *ber,
                delivered: r.delivered,
                dropped: r.packets_dropped,
                delivered_fraction,
                apl,
                latency_inflation: apl / baseline_apl(scheme, *routing),
                flits_retransmitted: r.flits_retransmitted,
                retransmit_overhead: if r.throughput > 0.0 {
                    r.flits_retransmitted as f64
                        / (r.throughput * r.cycles as f64 * r.routers as f64)
                } else {
                    0.0
                },
                packets_retried: r.packets_retried,
                reconfigurations: r.reconfigurations,
                oracle_violations: r.oracle_violations,
            }
        })
        .collect()
}

/// Render the matrix.
pub fn table(rows: &[ResilRow]) -> Table {
    let mut t = Table::new(
        "Resilience — delivered fraction / latency inflation under faults",
        &[
            "scheme",
            "routing",
            "BER",
            "delivered",
            "dropped",
            "frac",
            "inflation",
            "retx",
            "retx/flit",
            "retried",
            "reconfig",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.routing.clone(),
            format!("{:.0e}", r.ber),
            r.delivered.to_string(),
            r.dropped.to_string(),
            format!("{:.4}", r.delivered_fraction),
            format!("{:.2}x", r.latency_inflation),
            r.flits_retransmitted.to_string(),
            format!("{:.4}", r.retransmit_overhead),
            r.packets_retried.to_string(),
            r.reconfigurations.to_string(),
        ]);
    }
    t
}

/// Serialize the matrix as JSON (hand-rolled — the vendored serde is a
/// stub).
pub fn to_json(rows: &[ResilRow]) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"routing\": \"{}\", \"ber\": {:e}, \
             \"delivered\": {}, \"dropped\": {}, \"delivered_fraction\": {:.6}, \
             \"apl\": {}, \"latency_inflation\": {}, \
             \"flits_retransmitted\": {}, \"retransmit_overhead\": {:.6}, \
             \"packets_retried\": {}, \"reconfigurations\": {}, \
             \"oracle_violations\": {}}}{}\n",
            r.scheme,
            r.routing,
            r.ber,
            r.delivered,
            r.dropped,
            r.delivered_fraction,
            json_f64(r.apl),
            json_f64(r.latency_inflation),
            r.flits_retransmitted,
            r.retransmit_overhead,
            r.packets_retried,
            r.reconfigurations,
            r.oracle_violations,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON has no NaN; starved cells serialize as null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// The worst delivered fraction across faulted (BER > 0) cells — the
/// headline acceptance number.
pub fn worst_fraction(rows: &[ResilRow]) -> f64 {
    rows.iter()
        .filter(|r| r.ber > 0.0)
        .map(|r| r.delivered_fraction)
        .fold(1.0, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_meets_acceptance() {
        let ec = ExpConfig {
            warmup: 800,
            measure: 2_400,
            seed: 0xC0FFEE,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        // The checkpoint key embeds the windows/seed, so this test can
        // never poison (or be poisoned by) a real `repro resilience` run.
        let rows = run(&ec, true);
        assert_eq!(rows.len(), 2);
        let base = &rows[0];
        let faulted = &rows[1];
        assert_eq!(base.ber, 0.0);
        assert_eq!(base.reconfigurations, 0);
        assert_eq!(base.dropped, 0, "fault-free baseline dropped packets");
        assert!((base.delivered_fraction - 1.0).abs() < 1e-12);
        assert!(faulted.ber > 0.0);
        assert_eq!(faulted.reconfigurations, 1, "link kill must reconfigure");
        assert!(faulted.flits_retransmitted > 0, "BER exercised no ARQ");
        assert!(
            faulted.delivered_fraction >= 0.99,
            "delivered fraction {:.4}",
            faulted.delivered_fraction
        );
        assert!(
            faulted.latency_inflation.is_finite() && faulted.latency_inflation > 0.8,
            "implausible inflation {}",
            faulted.latency_inflation
        );
        let j = to_json(&rows);
        assert!(j.contains("\"delivered_fraction\""));
        assert!(worst_fraction(&rows) >= 0.99);
        assert_eq!(table(&rows).num_rows(), 2);
    }
}
