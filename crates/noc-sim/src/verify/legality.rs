//! Region / restriction legality: every source must retain a minimal legal
//! path to every destination under the link restrictions in force.

use super::cdg::Violations;
use super::{Verifier, Witness};
use crate::config::SimConfig;
use crate::ids::{NodeId, Port};
use crate::topology;

/// Check one destination. `adap`/`esc` hold the already-validated usable
/// hops per router (minimal, linked, link-filtered); `order` lists routers
/// in increasing topology distance from the destination, so a single
/// dynamic-programming pass settles reachability (every usable hop moves
/// strictly closer). Pair-filtered-out holders are exempt.
pub(super) fn check_dst(
    cfg: &SimConfig,
    v: &Verifier<'_>,
    dst_idx: usize,
    order: &[usize],
    adap: &[[Option<Port>; 2]],
    esc: &[Option<(Port, u8)>],
    vio: &mut Violations,
) {
    let mut reach = vec![false; cfg.num_routers()];
    reach[dst_idx] = true;
    // Detour mode: the escape function may be non-minimal, so settle
    // escape reachability first by resolving each escape chain (functional
    // graph — memoized walks, cycles and dead ends count as unreachable).
    let esc_reach = v
        .detour_escape
        .then(|| escape_chain_reach(cfg, dst_idx, esc));
    for &r in order {
        if r == dst_idx || !v.pair_usable(r as NodeId, dst_idx as NodeId) {
            continue;
        }
        let cur = cfg.router_coord(r);
        let hop_ok = |p: Port| reach[cfg.router_at(topology::step(cfg, cur, p))];
        let via_escape = match &esc_reach {
            Some(er) => er[r],
            None => esc[r].is_some_and(|(p, _)| hop_ok(p)),
        };
        reach[r] = adap[r].into_iter().flatten().any(hop_ok) || via_escape;
        if !reach[r] {
            vio.record(
                "region-legality",
                Witness::UnreachablePair {
                    src: r as NodeId,
                    dst: dst_idx as NodeId,
                },
            );
        }
    }
}

/// Does each router's escape *chain* (follow the escape port hop by hop)
/// reach the destination? Each router has at most one escape successor, so
/// the graph is functional: walk each unresolved chain once, then stamp
/// the verdict over the whole walked path. A chain that dead-ends
/// (`None`), leaves the admitted set, or revisits a router (cycle) never
/// reaches the destination.
fn escape_chain_reach(cfg: &SimConfig, dst_idx: usize, esc: &[Option<(Port, u8)>]) -> Vec<bool> {
    let n = cfg.num_routers();
    // 0 = unknown, 1 = reaches, 2 = does not.
    let mut state = vec![0u8; n];
    state[dst_idx] = 1;
    let mut path = Vec::new();
    for s in 0..n {
        if state[s] != 0 {
            continue;
        }
        path.clear();
        let mut c = s;
        let verdict = loop {
            if state[c] != 0 {
                break state[c];
            }
            if path.len() > n {
                break 2; // revisit ⇒ cycle ⇒ never reaches
            }
            path.push(c);
            match esc[c] {
                Some((p, _)) => c = cfg.router_at(topology::step(cfg, cfg.router_coord(c), p)),
                None => break 2,
            }
        };
        for &r in &path {
            state[r] = verdict;
        }
    }
    state.into_iter().map(|v| v == 1).collect()
}
