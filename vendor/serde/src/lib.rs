//! Offline vendored `serde` facade.
//!
//! The workspace only uses serde as a *bound* (`T: Serialize +
//! DeserializeOwned`) and as derives on config/result structs so they stay
//! serialization-ready; nothing actually serializes at runtime in this
//! container (no disk/wire format is produced by tier-1). The facade keeps
//! those bounds and derives compiling without the real crates-io dependency:
//! both traits are blanket-implemented for every type, and the re-exported
//! derive macros expand to nothing.
//!
//! If a future PR needs real serialization, replace this vendor crate with
//! genuine serde sources; the API surface here is bound-compatible.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
