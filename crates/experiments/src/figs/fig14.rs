//! Figure 14 — the generic six-application RNoC under uniform-random
//! global traffic.
//!
//! Six regions (Fig. 13): apps 0, 2, 3, 4 at low-to-medium load (10–30 %
//! of their saturation loads), apps 1 and 5 at 90 %. Every application's
//! traffic is 75 % intra-region UR + 20 % inter-region global + 5 %
//! memory-controller corner round trips. Four schemes are compared; the
//! paper reports average APL reductions vs RO_RR of 3.4 % (RA_DBAR),
//! 5.8 % (RO_Rank) and 10.1 % (RA_RAIR).

use crate::runner::{run_one, run_parallel, ExpConfig, Job, RunResult};
use crate::sweep::{build_network, cached_saturation};
use metrics::report::{f2, pct};
use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::{six_app, AppSpec, InterDest};

/// The load fractions of the six applications ("low to medium loads (10 %
/// to 30 %)" for apps 0, 2, 3, 4; 90 % for apps 1 and 5 — §V.E).
pub const LOAD_FRACTIONS: [f64; 6] = [0.10, 0.90, 0.30, 0.20, 0.25, 0.90];

/// The low/medium-load applications whose improvement the paper highlights.
pub const LOW_APPS: [usize; 4] = [0, 2, 3, 4];

/// The high-load applications.
pub const HIGH_APPS: [usize; 2] = [1, 5];

/// Per-application offered loads (flits/cycle/node): fraction × that
/// application's measured saturation load under the full 75/20/5 mix.
pub fn six_app_rates(ec: &ExpConfig) -> [f64; 6] {
    let cfg = SimConfig::table1();
    let region = RegionMap::six_regions(&cfg);
    let mix = AppSpec {
        rate_flits: 0.0,
        intra: 0.75,
        inter: 0.20,
        inter_dest: InterDest::OutsideUniform,
        mc: 0.05,
    };
    let mut rates = [0.0; 6];
    for (a, rate) in rates.iter_mut().enumerate() {
        let sat = cached_saturation(&format!("six/mix/app{a}"), ec, &cfg, &region, a as u8, &mix);
        *rate = LOAD_FRACTIONS[a] * sat;
    }
    rates
}

/// Result of one six-application comparison.
#[derive(Debug, Clone)]
pub struct SixAppResult {
    /// Global-traffic pattern label ("UR", "TP", …).
    pub pattern: String,
    /// `(scheme label, per-app APL)`, RO_RR first.
    pub schemes: Vec<(String, Vec<f64>)>,
}

impl SixAppResult {
    /// Average APL reduction of `label` vs RO_RR over the given apps (all
    /// six when `None`); positive = improvement.
    pub fn avg_reduction(&self, label: &str, apps: Option<&[usize]>) -> f64 {
        let base = &self.schemes[0].1;
        let (_, apl) = self
            .schemes
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no scheme {label}"));
        let idx: Vec<usize> = apps.map_or((0..6).collect(), <[usize]>::to_vec);
        let r: f64 = idx.iter().map(|&a| 1.0 - apl[a] / base[a]).sum();
        r / idx.len() as f64
    }
}

/// The four compared schemes, with their routing algorithms (all schemes
/// are augmented with Duato adaptive routing; RA_DBAR uses DBAR — §V.A/E).
fn schemes(rates: &[f64; 6]) -> Vec<(&'static str, Scheme, Routing)> {
    vec![
        ("RO_RR", Scheme::RoRr, Routing::Local),
        ("RA_DBAR", Scheme::RoRr, Routing::Dbar),
        ("RO_Rank", Scheme::ro_rank(rates.to_vec()), Routing::Local),
        ("RA_RAIR", Scheme::rair(), Routing::Local),
    ]
}

/// Run the six-application comparison for one global-traffic destination
/// rule. Shared by Figures 14 and 15.
pub fn run_with_global(ec: &ExpConfig, pattern_label: &str, global: InterDest) -> SixAppResult {
    let rates = six_app_rates(ec);
    let jobs: Vec<Job> = schemes(&rates)
        .into_iter()
        .map(|(label, scheme, routing)| {
            let ec = *ec;
            let label = label.to_string();
            let global = global.clone();

            Job::new(label.clone(), move || {
                let cfg = SimConfig::table1();
                let (region, scenario) = six_app(&cfg, rates, global.clone());
                let net =
                    build_network(&cfg, &region, &scheme, routing, Box::new(scenario), ec.seed);
                run_one(label.clone(), net, &ec)
            })
        })
        .collect();
    let results = run_parallel(jobs);
    SixAppResult {
        pattern: pattern_label.to_string(),
        schemes: results
            .into_iter()
            .map(|r: RunResult| {
                let apl = (0..6).map(|a| r.app_apl(a)).collect();
                (r.label, apl)
            })
            .collect(),
    }
}

/// Run Figure 14 (uniform-random global traffic).
pub fn run(ec: &ExpConfig) -> SixAppResult {
    run_with_global(ec, "UR", InterDest::OutsideUniform)
}

/// Render the figure's table: per-app APL plus average reduction vs RO_RR.
pub fn table(res: &SixAppResult) -> Table {
    let mut t = Table::new(
        format!(
            "Fig.14 — six-app RNoC, {} global traffic: APL per app (cycles)",
            res.pattern
        ),
        &[
            "scheme", "App0", "App1", "App2", "App3", "App4", "App5", "avg red.",
        ],
    );
    for (label, apl) in &res.schemes {
        let mut row = vec![label.clone()];
        row.extend(apl.iter().map(|&a| f2(a)));
        row.push(if label == "RO_RR" {
            "—".into()
        } else {
            pct(res.avg_reduction(label, None))
        });
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> SixAppResult {
        SixAppResult {
            pattern: "UR".into(),
            schemes: vec![
                ("RO_RR".into(), vec![20.0; 6]),
                ("RA_RAIR".into(), vec![18.0, 22.0, 18.0, 18.0, 18.0, 22.0]),
            ],
        }
    }

    #[test]
    fn avg_reduction_all_and_subset() {
        let r = synthetic();
        // Low apps: 0.1 each; high apps: -0.1 each → overall (4*0.1-2*0.1)/6.
        let all = r.avg_reduction("RA_RAIR", None);
        assert!((all - 0.2 / 6.0).abs() < 1e-12);
        let low = r.avg_reduction("RA_RAIR", Some(&LOW_APPS));
        assert!((low - 0.1).abs() < 1e-12);
        let high = r.avg_reduction("RA_RAIR", Some(&HIGH_APPS));
        assert!((high + 0.1).abs() < 1e-12);
    }

    #[test]
    fn load_fractions_match_paper_text() {
        // Apps 1 and 5 are the 90% high-load ones; the rest are 10–30%.
        assert_eq!(LOAD_FRACTIONS[1], 0.90);
        assert_eq!(LOAD_FRACTIONS[5], 0.90);
        for a in LOW_APPS {
            assert!((0.10..=0.30).contains(&LOAD_FRACTIONS[a]));
        }
    }

    #[test]
    fn table_marks_baseline() {
        let t = table(&synthetic());
        assert_eq!(t.num_rows(), 2);
        assert!(t.render().contains("—"));
    }
}
