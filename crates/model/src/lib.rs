//! Closed-form priority-class performance model for regionalized NoCs.
//!
//! Following the M/G/1-priority approach of Mandal et al. ("Analytical
//! Performance Models for NoCs with Multiple Priority Traffic Classes"),
//! specialized to this repository's simulator: RAIR's native/foreign split
//! maps onto a two-class non-preemptive priority queue at every shared
//! channel.
//!
//! The model works in three analytic stages, no simulation anywhere:
//!
//! 1. **Flow enumeration** — every `(src, dst)` pair an [`AppSpec`]'s
//!    traffic mix can generate, with its exact packet rate and packet-size
//!    moments (the scenario's 50/50 short/long request mix; long-packet MC
//!    replies on the reverse path). Distributions are enumerated from the
//!    same rules [`traffic::scenario::Scenario::new`] draws from, so the
//!    offered matrix matches the simulator in expectation.
//! 2. **Link loads** — each flow is spread over its minimal-route lattice
//!    (wrap-aware chosen minimal directions via
//!    [`noc_sim::topology::productive_ports`], so torus/ring/cmesh are
//!    handled uniformly): dimension-order takes the single X-then-Y walk,
//!    adaptive routing is approximated as a uniform draw over all minimal
//!    paths with closed-form binomial crossing probabilities per channel.
//!    Per directed channel the model accumulates, separately for traffic
//!    that is *native* vs *foreign* at that channel's upstream router:
//!    packet rate `λ`, utilization `ρ = λ·E[S]` and residual work
//!    `λ·E[S²]/2`.
//! 3. **Queueing** — per-channel waiting times from the two-class
//!    non-preemptive M/G/1 priority formulas ([`mg1_priority_wait`]), and
//!    the saturation point as the offered load where the busiest channel's
//!    utilization reaches [`SATURATION_EFFICIENCY`] (an empirical derating
//!    of the unit-capacity bound, calibrated against the simulator: flow
//!    control, turn restrictions and finite VC depth keep real channels
//!    from reaching utilization 1).
//!
//! The saturation predictor is the warm-start hint for
//! [`traffic::saturation::find_saturation_traced`]; the latency predictor
//! backs the sweep-pruning heuristic and the cross-validation suite.

use noc_sim::config::SimConfig;
use noc_sim::ids::{AppId, NodeId};
use noc_sim::region::RegionMap;
use noc_sim::topology::{productive_ports, step};
use traffic::pattern::Pattern;
use traffic::saturation::WarmStart;
use traffic::scenario::{AppSpec, InterDest, AVG_PACKET_FLITS};

use std::collections::BTreeMap;
use std::fmt;

/// Derating of the unit-capacity bound on mesh-family topologies
/// (mesh, concentrated mesh): predicted saturation is the offered load
/// where the busiest channel reaches this utilization. Calibrated against
/// measured saturation loads on the Table-1 matrix (see
/// `repro bench-model`); flow control, turn restrictions and finite VC
/// depth keep real channels from reaching utilization 1.
pub const SATURATION_EFFICIENCY: f64 = 0.75;

/// Channel-efficiency derating on the torus: the dateline VC restriction
/// halves the effective VC budget near the wrap crossing, so tori
/// saturate well below the mesh-calibrated efficiency.
pub const TORUS_EFFICIENCY: f64 = 0.60;

/// Channel-efficiency derating on the ring (1-D torus): the single-path
/// route keeps head-of-line blocking milder than on the 2-D torus, but the
/// dateline restriction still costs relative to the mesh.
pub const RING_EFFICIENCY: f64 = 0.78;

/// Efficiency of a node's dedicated injection/ejection port: with no
/// cross-traffic interference a dedicated port sustains utilization close
/// to 1 before backpressure bites (unlike shared router-router channels).
pub const IO_EFFICIENCY: f64 = 0.90;

/// The calibrated channel efficiency for `cfg`'s topology.
pub fn saturation_efficiency(cfg: &SimConfig) -> f64 {
    use noc_sim::topology::TopologyKind;
    match cfg.topology {
        TopologyKind::Mesh | TopologyKind::CMesh { .. } => SATURATION_EFFICIENCY,
        TopologyKind::Torus => TORUS_EFFICIENCY,
        TopologyKind::Ring => RING_EFFICIENCY,
    }
}

/// The calibrated efficiency of one channel: dedicated per-node I/O ports
/// run at [`IO_EFFICIENCY`]; everything shared (router-router channels,
/// and concentrated-mesh ejection ports serving several nodes) at the
/// topology's [`saturation_efficiency`].
fn link_efficiency(cfg: &SimConfig, link: Link) -> f64 {
    match link {
        Link::Inject(_) => IO_EFFICIENCY,
        Link::Eject(_) if cfg.concentration() == 1 => IO_EFFICIENCY,
        _ => saturation_efficiency(cfg),
    }
}

/// Cycles a head flit spends in each router pipeline at zero load
/// (route computation + VC allocation + switch traversal).
pub const ROUTER_LATENCY: f64 = 3.0;

/// Cycles per inter-router link traversal.
pub const LINK_LATENCY: f64 = 1.0;

/// Relative half-width of the warm-start confidence band, as a fraction of
/// the predicted load; [`warm_hint`] clamps the absolute margin to
/// [`MIN_WARM_MARGIN`]..=[`MAX_WARM_MARGIN`]. Sized so the calibrated
/// error band of the Table-1 configs fits inside the margin (the search
/// then accepts the hint) while the margin stays below one level-3
/// bisection cell — keeping the number of simulated in-band midpoints at
/// ~4, half of a cold search's 8.
pub const WARM_MARGIN_FRAC: f64 = 0.10;
/// Absolute floor of the warm-start margin (flits/cycle/node).
pub const MIN_WARM_MARGIN: f64 = 0.035;
/// Absolute ceiling of the warm-start margin (flits/cycle/node).
pub const MAX_WARM_MARGIN: f64 = 0.06;

/// How the model routes flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Deterministic dimension-order (XY; wrap-aware minimal directions on
    /// torus/ring).
    DimensionOrder,
    /// Minimal adaptive, approximated as a uniform draw over all minimal
    /// paths (binomial crossing probabilities on the route lattice).
    Adaptive,
}

/// Which traffic class gets head-of-line priority at shared channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityMode {
    /// Single-class FIFO service (round-robin-style schemes).
    None,
    /// Native traffic preempts foreign at each channel (RAIR default).
    NativeHigh,
    /// Foreign traffic preempts native (the inverted ablation).
    ForeignHigh,
}

/// A directed contention point in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Link {
    /// The injection channel of one node's network interface.
    Inject(NodeId),
    /// The directed router-to-router channel `from → to` (router indices).
    Hop(u32, u32),
    /// A router's ejection channel (shared by all `concentration` nodes).
    Eject(u32),
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Link::Inject(n) => write!(f, "inject(n{n})"),
            Link::Hop(a, b) => write!(f, "r{a}->r{b}"),
            Link::Eject(r) => write!(f, "eject(r{r})"),
        }
    }
}

/// One `(src, dst)` traffic component with its packet rate (packets per
/// cycle) and service-time moments (flits; 1 flit/cycle channels make
/// service cycles equal packet flits).
#[derive(Debug, Clone, Copy)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    pkt_rate: f64,
    mean: f64,
    m2: f64,
    app: AppId,
}

/// Per-channel load accumulator, split by the native/foreign class of the
/// traffic at this channel (`[0] = native, [1] = foreign`).
#[derive(Debug, Clone, Copy, Default)]
struct LinkLoad {
    /// Utilization `Σ λ·E[S]` (flits/cycle).
    rho: [f64; 2],
    /// Residual work `Σ λ·E[S²]/2` (the M/G/1 numerator).
    resid: [f64; 2],
}

// ------------------------------------------------------------------------
// Stage 1: flow enumeration
// ------------------------------------------------------------------------

/// Destination probabilities of one pattern from `src`, mirroring
/// [`Pattern::dest`]. The returned weights sum to ≤ 1; missing mass is the
/// probability that `dest` returns `None` (transpose diagonal, singleton
/// sets).
fn pattern_distribution(cfg: &SimConfig, p: &Pattern, src: NodeId) -> Vec<(NodeId, f64)> {
    let n = cfg.num_nodes() as NodeId;
    let uniform_excluding = |set: &[NodeId]| -> Vec<(NodeId, f64)> {
        let targets: Vec<NodeId> = set.iter().copied().filter(|&d| d != src).collect();
        let q = 1.0 / targets.len() as f64;
        targets.into_iter().map(|d| (d, q)).collect()
    };
    match p {
        Pattern::UniformRandom => uniform_excluding(&(0..n).collect::<Vec<_>>()),
        Pattern::UniformWithin(set) => uniform_excluding(set),
        Pattern::UniformOutside(set) => {
            let outside: Vec<NodeId> = (0..n).filter(|d| !set.contains(d)).collect();
            uniform_excluding(&outside)
        }
        Pattern::Transpose => {
            let c = cfg.coord_of(src);
            if c.x == c.y || cfg.width != cfg.height {
                return Vec::new();
            }
            vec![(cfg.node_at(noc_sim::ids::Coord { x: c.y, y: c.x }), 1.0)]
        }
        Pattern::BitComplement => {
            let d = n - 1 - src;
            if d == src {
                Vec::new()
            } else {
                vec![(d, 1.0)]
            }
        }
        Pattern::Hotspot { spots, bias } => {
            let mut acc: BTreeMap<NodeId, f64> = BTreeMap::new();
            for (d, q) in uniform_excluding(spots) {
                *acc.entry(d).or_default() += bias * q;
            }
            for (d, q) in pattern_distribution(cfg, &Pattern::UniformRandom, src) {
                *acc.entry(d).or_default() += (1.0 - bias) * q;
            }
            acc.into_iter().collect()
        }
    }
}

/// Destination distribution of one application's packets from `src`:
/// `(dst, probability, is_mc_request)` triples summing to ≤ 1 (mass lost to
/// undefined destinations is dropped, exactly as the scenario drops those
/// draws).
fn dest_distribution(
    cfg: &SimConfig,
    region: &RegionMap,
    app: AppId,
    spec: &AppSpec,
    src: NodeId,
) -> Vec<(NodeId, f64, bool)> {
    let mut acc: BTreeMap<(NodeId, bool), f64> = BTreeMap::new();
    let own = region.nodes_of(app);
    let mut add = |dst: NodeId, q: f64, mc: bool| {
        if q > 0.0 {
            *acc.entry((dst, mc)).or_default() += q;
        }
    };
    if spec.intra > 0.0 {
        for (d, q) in pattern_distribution(cfg, &Pattern::UniformWithin(own.clone()), src) {
            add(d, spec.intra * q, false);
        }
    }
    if spec.inter > 0.0 {
        let outside = Pattern::UniformOutside(own.clone());
        let dist = match &spec.inter_dest {
            InterDest::OutsideUniform => pattern_distribution(cfg, &outside, src),
            InterDest::Region(target) => {
                pattern_distribution(cfg, &Pattern::UniformWithin(region.nodes_of(*target)), src)
            }
            InterDest::Pattern(p) => {
                let d = pattern_distribution(cfg, p, src);
                // The scenario redirects draws whose pattern destination is
                // undefined to outside-uniform; mirror that for the
                // missing mass.
                let covered: f64 = d.iter().map(|(_, q)| q).sum();
                let mut d = d;
                if covered < 1.0 - 1e-12 {
                    for (dst, q) in pattern_distribution(cfg, &outside, src) {
                        d.push((dst, (1.0 - covered) * q));
                    }
                }
                d
            }
        };
        for (d, q) in dist {
            add(d, spec.inter * q, false);
        }
    }
    if spec.mc > 0.0 {
        // Uniform over the four corners; a draw of the source itself is
        // remapped to the next corner in array order (scenario rule).
        let corners = cfg.corners();
        for (i, &c) in corners.iter().enumerate() {
            let dst = if c == src { corners[(i + 1) % 4] } else { c };
            add(dst, spec.mc * 0.25, true);
        }
    }
    acc.into_iter().map(|((d, mc), q)| (d, q, mc)).collect()
}

/// Enumerate every flow application `app` offers under `spec` (requests
/// plus MC reply packets on the reverse path).
fn app_flows(cfg: &SimConfig, region: &RegionMap, app: AppId, spec: &AppSpec, out: &mut Vec<Flow>) {
    if spec.rate_flits <= 0.0 {
        return;
    }
    let pkt_rate = spec.rate_flits / AVG_PACKET_FLITS;
    let long = f64::from(cfg.long_flits);
    // 50/50 short/long request mix.
    let req_mean = 0.5 * (1.0 + long);
    let req_m2 = 0.5 * (1.0 + long * long);
    for src in region.nodes_of(app) {
        for (dst, q, is_mc) in dest_distribution(cfg, region, app, spec, src) {
            out.push(Flow {
                src,
                dst,
                pkt_rate: pkt_rate * q,
                mean: req_mean,
                m2: req_m2,
                app,
            });
            if is_mc {
                // The corner answers every MC request with one long packet.
                out.push(Flow {
                    src: dst,
                    dst: src,
                    pkt_rate: pkt_rate * q,
                    mean: long,
                    m2: long * long,
                    app,
                });
            }
        }
    }
}

// ------------------------------------------------------------------------
// Stage 2: routes and link loads
// ------------------------------------------------------------------------

/// Binomial coefficient as f64 (path counts on the minimal-path lattice;
/// radix-bounded, so well inside exact-f64 territory).
fn binom(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - k + 1 + i) as f64 / (i + 1) as f64;
    }
    r
}

/// The coordinate sequence of the chosen minimal direction along one
/// dimension (`dim` 0 = X, 1 = Y), from `from` toward `to` — wrap-aware
/// through [`productive_ports`], so torus/ring dateline direction choices
/// match the simulator's.
fn axis_seq(
    cfg: &SimConfig,
    from: noc_sim::ids::Coord,
    to: noc_sim::ids::Coord,
    dim: usize,
) -> Vec<u8> {
    let mut cur = from;
    let target = if dim == 0 {
        noc_sim::ids::Coord { x: to.x, y: from.y }
    } else {
        noc_sim::ids::Coord { x: from.x, y: to.y }
    };
    let mut seq = vec![if dim == 0 { cur.x } else { cur.y }];
    while let Some(p) = productive_ports(cfg, cur, target)[dim] {
        cur = step(cfg, cur, p);
        seq.push(if dim == 0 { cur.x } else { cur.y });
    }
    seq
}

/// How one flow's load is spread over its minimal-route lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteStyle {
    /// The single X-then-Y dimension-order walk.
    Dor,
    /// Uniform draw over all minimal paths (binomial crossing weights).
    Spread,
    /// 50/50 over the X-first and Y-first walks (the two lattice
    /// boundaries) — the concentrated extreme of minimal adaptivity.
    Mix,
}

impl RoutingKind {
    /// The route style used for expected-value quantities (loads, waits).
    fn style(self) -> RouteStyle {
        match self {
            RoutingKind::DimensionOrder => RouteStyle::Dor,
            RoutingKind::Adaptive => RouteStyle::Spread,
        }
    }
}

/// The channels a `src → dst` packet crosses, with their crossing
/// probabilities (summing to 1 per lattice stage).
///
/// Minimal routes form an `a × b` lattice over the chosen minimal
/// directions (`a` X-steps, `b` Y-steps). Under `Spread` the fraction of
/// the `C(a+b, a)` minimal paths crossing the X-channel leaving lattice
/// point `(i, j)` is `C(i+j, i) · C(a-1-i + b-j, a-1-i) / C(a+b, a)`,
/// and symmetrically for Y-channels.
fn route_distribution(
    cfg: &SimConfig,
    src: NodeId,
    dst: NodeId,
    style: RouteStyle,
    out: &mut Vec<(Link, f64)>,
) {
    out.push((Link::Inject(src), 1.0));
    let (rs, rd) = (cfg.router_of(src), cfg.router_of(dst));
    let (sc, dc) = (cfg.router_coord(rs), cfg.router_coord(rd));
    let xs = axis_seq(cfg, sc, dc, 0);
    let ys = axis_seq(cfg, sc, dc, 1);
    let (a, b) = (xs.len() - 1, ys.len() - 1);
    let r_at = |x: u8, y: u8| cfg.router_at(noc_sim::ids::Coord { x, y }) as u32;
    match style {
        RouteStyle::Dor => {
            for i in 0..a {
                out.push((Link::Hop(r_at(xs[i], ys[0]), r_at(xs[i + 1], ys[0])), 1.0));
            }
            for j in 0..b {
                out.push((Link::Hop(r_at(xs[a], ys[j]), r_at(xs[a], ys[j + 1])), 1.0));
            }
        }
        RouteStyle::Mix => {
            // X-first boundary walk…
            for i in 0..a {
                out.push((Link::Hop(r_at(xs[i], ys[0]), r_at(xs[i + 1], ys[0])), 0.5));
            }
            for j in 0..b {
                out.push((Link::Hop(r_at(xs[a], ys[j]), r_at(xs[a], ys[j + 1])), 0.5));
            }
            // …and the Y-first one.
            for j in 0..b {
                out.push((Link::Hop(r_at(xs[0], ys[j]), r_at(xs[0], ys[j + 1])), 0.5));
            }
            for i in 0..a {
                out.push((Link::Hop(r_at(xs[i], ys[b]), r_at(xs[i + 1], ys[b])), 0.5));
            }
        }
        RouteStyle::Spread => {
            let total = binom(a + b, a);
            for i in 0..a {
                for (j, &yj) in ys.iter().enumerate() {
                    let w = binom(i + j, i) * binom(a - 1 - i + b - j, a - 1 - i) / total;
                    out.push((Link::Hop(r_at(xs[i], yj), r_at(xs[i + 1], yj)), w));
                }
            }
            for j in 0..b {
                for (i, &xi) in xs.iter().enumerate() {
                    let w = binom(i + j, j) * binom(a - i + b - 1 - j, b - 1 - j) / total;
                    out.push((Link::Hop(r_at(xi, ys[j]), r_at(xi, ys[j + 1])), w));
                }
            }
        }
    }
    out.push((Link::Eject(rd as u32), 1.0));
}

/// Is `flow` native traffic at `link` (the upstream router's region tag
/// matches the flow's application)?
fn native_at(cfg: &SimConfig, region: &RegionMap, link: Link, app: AppId) -> bool {
    let tag_node = match link {
        Link::Inject(n) => n,
        Link::Hop(from, _) => (from as usize * cfg.concentration()) as NodeId,
        Link::Eject(r) => (r as usize * cfg.concentration()) as NodeId,
    };
    region.is_native(tag_node, app)
}

/// Accumulate every flow's load onto its channels.
fn link_loads(
    cfg: &SimConfig,
    region: &RegionMap,
    flows: &[Flow],
    style: RouteStyle,
) -> BTreeMap<Link, LinkLoad> {
    let mut loads: BTreeMap<Link, LinkLoad> = BTreeMap::new();
    let mut route = Vec::new();
    for f in flows {
        route.clear();
        route_distribution(cfg, f.src, f.dst, style, &mut route);
        for &(link, w) in &route {
            let cls = usize::from(!native_at(cfg, region, link, f.app));
            let e = loads.entry(link).or_default();
            let lam = w * f.pkt_rate;
            e.rho[cls] += lam * f.mean;
            e.resid[cls] += lam * f.m2 / 2.0;
        }
    }
    loads
}

// ------------------------------------------------------------------------
// Stage 3: queueing
// ------------------------------------------------------------------------

/// Mean waiting time of one class in a two-class non-preemptive M/G/1
/// priority queue: `resid` is the total residual work `Σ λ·E[S²]/2` over
/// both classes, `rho_high`/`rho_total` the high-class and total
/// utilizations. `high` selects the class. Returns `f64::INFINITY` at or
/// beyond saturation of the serving channel.
pub fn mg1_priority_wait(resid: f64, rho_high: f64, rho_total: f64, high: bool) -> f64 {
    const EPS: f64 = 1e-9;
    if high {
        if rho_high >= 1.0 - EPS {
            return f64::INFINITY;
        }
        resid / (1.0 - rho_high)
    } else {
        if rho_high >= 1.0 - EPS || rho_total >= 1.0 - EPS {
            return f64::INFINITY;
        }
        resid / ((1.0 - rho_high) * (1.0 - rho_total))
    }
}

/// Waiting time of `flow`-class traffic at one loaded channel under `mode`.
fn wait_at(load: &LinkLoad, native: bool, mode: PriorityMode) -> f64 {
    let resid = load.resid[0] + load.resid[1];
    let total = load.rho[0] + load.rho[1];
    match mode {
        // Single class: rho_high = 0 reduces the low-class formula to the
        // plain Pollaczek-Khinchine mean wait R/(1-ρ).
        PriorityMode::None => mg1_priority_wait(resid, 0.0, total, false),
        PriorityMode::NativeHigh => mg1_priority_wait(resid, load.rho[0], total, native),
        PriorityMode::ForeignHigh => mg1_priority_wait(resid, load.rho[1], total, !native),
    }
}

// ------------------------------------------------------------------------
// Public predictions
// ------------------------------------------------------------------------

/// A saturation prediction with its bottleneck diagnosis.
#[derive(Debug, Clone, Copy)]
pub struct SaturationPrediction {
    /// Predicted saturation load (flits/cycle/node over the app's nodes).
    pub load: f64,
    /// Flit rate of the bottleneck channel at unit offered load; `load`
    /// is the bottleneck's calibrated efficiency over `channel_load`.
    pub channel_load: f64,
    /// The channel that saturates first.
    pub bottleneck: Link,
}

/// Predict the saturation load of `app` running alone with mix `spec`
/// (the operating point [`traffic::saturation::app_saturation`] measures):
/// the offered load at which the busiest channel's utilization reaches
/// [`saturation_efficiency`]. `None` when the spec generates no traffic.
pub fn predict_app_saturation(
    cfg: &SimConfig,
    region: &RegionMap,
    app: AppId,
    spec: &AppSpec,
    routing: RoutingKind,
) -> Option<SaturationPrediction> {
    let unit = AppSpec {
        rate_flits: 1.0,
        ..spec.clone()
    };
    let mut flows = Vec::new();
    app_flows(cfg, region, app, &unit, &mut flows);
    if flows.is_empty() {
        return None;
    }
    let loads = link_loads(cfg, region, &flows, routing.style());
    // Adaptive routing steers by local congestion between two oblivious
    // extremes: uniform path sampling (which bulges load into the lattice
    // center) and the deterministic XY/YX boundary pair (which piles load
    // onto corners). Congestion avoidance relieves whichever is locally
    // worse, so estimate each channel's achievable load as the pointwise
    // minimum of the two maps. Dimension-order is exact.
    let mix = (routing == RoutingKind::Adaptive)
        .then(|| link_loads(cfg, region, &flows, RouteStyle::Mix));
    let est = |l: &Link, load: &LinkLoad| -> f64 {
        let spread = load.rho[0] + load.rho[1];
        match &mix {
            Some(m) => m.get(l).map_or(0.0, |ml| ml.rho[0] + ml.rho[1]).min(spread),
            None => spread,
        }
    };
    // The bottleneck is the channel whose calibrated capacity is exhausted
    // first: minimize efficiency/load, i.e. maximize load/efficiency.
    let (bottleneck, channel_load) =
        loads
            .iter()
            .map(|(l, load)| (*l, est(l, load)))
            .max_by(|a, b| {
                (a.1 / link_efficiency(cfg, a.0)).total_cmp(&(b.1 / link_efficiency(cfg, b.0)))
            })?;
    if channel_load <= 0.0 {
        return None;
    }
    Some(SaturationPrediction {
        load: link_efficiency(cfg, bottleneck) / channel_load,
        channel_load,
        bottleneck,
    })
}

/// The model's warm-start hint for a saturation search of `app` alone
/// under `spec`: the predicted load with a confidence margin wide enough
/// to absorb the model's calibrated error band. `None` when the model has
/// no prediction (the search then runs cold).
pub fn warm_hint(
    cfg: &SimConfig,
    region: &RegionMap,
    app: AppId,
    spec: &AppSpec,
    routing: RoutingKind,
) -> Option<WarmStart> {
    let pred = predict_app_saturation(cfg, region, app, spec, routing)?;
    let margin = (pred.load * WARM_MARGIN_FRAC).clamp(MIN_WARM_MARGIN, MAX_WARM_MARGIN);
    Some(WarmStart {
        predicted: pred.load,
        margin,
    })
}

/// One channel of the public load map: its predicted utilization at the
/// given operating point, split by the native/foreign class of the
/// traffic crossing it, plus the calibrated capacity it saturates at.
#[derive(Debug, Clone, Copy)]
pub struct ChannelLoad {
    /// The contention point.
    pub link: Link,
    /// Native-class utilization `Σ λ·E[S]` (flits/cycle).
    pub rho_native: f64,
    /// Foreign-class utilization (flits/cycle).
    pub rho_foreign: f64,
    /// Calibrated efficiency of this channel (fraction of unit capacity
    /// reachable before flow control saturates it).
    pub capacity: f64,
}

impl ChannelLoad {
    /// Total predicted utilization of the channel.
    pub fn rho_total(&self) -> f64 {
        self.rho_native + self.rho_foreign
    }
}

/// The per-flow link-load map of the multi-application operating point
/// `specs` — the public API the static admission pipeline's bandwidth
/// feasibility check is built on. Every contended channel appears with
/// its class-split utilization (stage 2 of the model, no queueing), in
/// deterministic [`Link`] order. A channel with `rho_total() > 1` is
/// physically over-subscribed (the over-subscribed-region rejection);
/// one above `capacity` but below 1 is feasible only past the calibrated
/// knee (admitted-with-warning).
pub fn link_load_map(
    cfg: &SimConfig,
    region: &RegionMap,
    specs: &[Option<AppSpec>],
    routing: RoutingKind,
) -> Vec<ChannelLoad> {
    assert_eq!(specs.len(), region.num_apps());
    let mut flows = Vec::new();
    for (a, spec) in specs.iter().enumerate() {
        if let Some(s) = spec {
            app_flows(cfg, region, a as AppId, s, &mut flows);
        }
    }
    link_loads(cfg, region, &flows, routing.style())
        .into_iter()
        .map(|(link, load)| ChannelLoad {
            link,
            rho_native: load.rho[0],
            rho_foreign: load.rho[1],
            capacity: link_efficiency(cfg, link),
        })
        .collect()
}

/// Predicted mean packet latency per application (cycles, injection to
/// ejection) for the multi-application operating point `specs` under
/// `routing` and priority `mode`. `per_app[a]` is `None` for silent
/// applications and `Some(f64::INFINITY)` when any channel on the
/// application's routes is saturated.
pub fn predict_latencies(
    cfg: &SimConfig,
    region: &RegionMap,
    specs: &[Option<AppSpec>],
    routing: RoutingKind,
    mode: PriorityMode,
) -> Vec<Option<f64>> {
    assert_eq!(specs.len(), region.num_apps());
    let mut flows = Vec::new();
    for (a, spec) in specs.iter().enumerate() {
        if let Some(s) = spec {
            app_flows(cfg, region, a as AppId, s, &mut flows);
        }
    }
    let loads = link_loads(cfg, region, &flows, routing.style());
    let mut lat_sum = vec![0.0_f64; specs.len()];
    let mut rate_sum = vec![0.0_f64; specs.len()];
    let mut route = Vec::new();
    for f in &flows {
        route.clear();
        route_distribution(cfg, f.src, f.dst, routing.style(), &mut route);
        // Every minimal route has the same hop count; the adaptive split
        // only redistributes which channels are crossed.
        let hops: f64 = route
            .iter()
            .filter(|(l, _)| matches!(l, Link::Hop(_, _)))
            .map(|&(_, w)| w)
            .sum();
        // Zero-load pipeline: every router on the path (hops + the
        // ejecting router) plus link traversals plus serialization of
        // the body flits; then the expected queueing wait at each
        // channel, weighted by the probability of crossing it.
        let mut lat = (hops + 1.0) * ROUTER_LATENCY + hops * LINK_LATENCY + (f.mean - 1.0);
        for &(link, w) in &route {
            let load = &loads[&link];
            lat += w * wait_at(load, native_at(cfg, region, link, f.app), mode);
        }
        lat_sum[f.app as usize] += f.pkt_rate * lat;
        rate_sum[f.app as usize] += f.pkt_rate;
    }
    lat_sum
        .iter()
        .zip(&rate_sum)
        .map(|(&l, &r)| (r > 0.0).then(|| l / r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::table1()
    }

    #[test]
    fn pattern_distributions_sum_to_one_or_less() {
        let c = cfg();
        let n = c.num_nodes() as NodeId;
        for p in [
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::BitComplement,
            Pattern::UniformWithin((0..32).collect()),
            Pattern::UniformOutside((0..32).collect()),
            Pattern::Hotspot {
                spots: Pattern::center_hotspots(&c),
                bias: 0.7,
            },
        ] {
            for src in 0..n {
                let d = pattern_distribution(&c, &p, src);
                let total: f64 = d.iter().map(|(_, q)| q).sum();
                assert!(total <= 1.0 + 1e-9, "{p:?} from {src}: {total}");
                assert!(d.iter().all(|&(dst, q)| dst != src && q > 0.0));
                // Only the transpose diagonal loses mass.
                if !matches!(p, Pattern::Transpose) {
                    assert!((total - 1.0).abs() < 1e-9, "{p:?} from {src}: {total}");
                }
            }
        }
    }

    #[test]
    fn dest_distribution_mirrors_scenario_mix() {
        let c = cfg();
        let region = RegionMap::six_regions(&c);
        let spec = AppSpec {
            rate_flits: 0.3,
            intra: 0.75,
            inter: 0.20,
            inter_dest: InterDest::OutsideUniform,
            mc: 0.05,
        };
        let d = dest_distribution(&c, &region, 0, &spec, 0);
        let total: f64 = d.iter().map(|(_, q, _)| q).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        let mc: f64 = d.iter().filter(|(_, _, m)| *m).map(|(_, q, _)| q).sum();
        assert!((mc - 0.05).abs() < 1e-9, "mc mass {mc}");
        // Node 0 is a corner: its own-corner MC draw remaps elsewhere.
        assert!(d.iter().all(|&(dst, _, _)| dst != 0));
    }

    #[test]
    fn flows_conserve_offered_packets() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        let spec = AppSpec::intra_only(0.3);
        let mut flows = Vec::new();
        app_flows(&c, &region, 0, &spec, &mut flows);
        let pkts: f64 = flows.iter().map(|f| f.pkt_rate).sum();
        let expect = 32.0 * 0.3 / AVG_PACKET_FLITS;
        assert!((pkts - expect).abs() < 1e-9, "{pkts} vs {expect}");
        assert!(flows
            .iter()
            .all(|f| region.app_of(f.src) == 0 && region.app_of(f.dst) == 0));
    }

    #[test]
    fn route_distributions_are_minimal_and_conserve_flow() {
        let c = cfg();
        for (src, dst) in [(0u16, 63u16), (7, 56), (10, 10), (3, 4)] {
            let d = noc_sim::topology::distance(&c, c.coord_of(src), c.coord_of(dst));
            for style in [RouteStyle::Dor, RouteStyle::Spread, RouteStyle::Mix] {
                let mut route = Vec::new();
                route_distribution(&c, src, dst, style, &mut route);
                assert_eq!(route[0], (Link::Inject(src), 1.0));
                assert_eq!(
                    *route.last().unwrap(),
                    (Link::Eject(c.router_of(dst) as u32), 1.0)
                );
                // The expected hop count equals the topological distance:
                // crossing probabilities over each lattice stage sum to 1,
                // so hop weights total exactly `d`.
                let hops: f64 = route
                    .iter()
                    .filter(|(l, _)| matches!(l, Link::Hop(_, _)))
                    .map(|&(_, w)| w)
                    .sum();
                assert!((hops - f64::from(d)).abs() < 1e-9, "{src}->{dst} {style:?}");
                assert!(route.iter().all(|&(_, w)| w > 0.0 && w <= 1.0 + 1e-12));
            }
        }
        // Dimension-order is a single walk: every weight is exactly 1.
        let mut route = Vec::new();
        route_distribution(&c, 0, 63, RouteStyle::Dor, &mut route);
        assert!(route.iter().all(|&(_, w)| w == 1.0));
    }

    #[test]
    fn mg1_waits_are_ordered_and_blow_up() {
        // High class never waits longer than low; both grow with load.
        let resid = 1.3;
        let (rho_h, rho_l) = (0.4, 0.3);
        let wh = mg1_priority_wait(resid, rho_h, rho_h + rho_l, true);
        let wl = mg1_priority_wait(resid, rho_h, rho_h + rho_l, false);
        assert!(wh > 0.0 && wl > wh, "wh={wh} wl={wl}");
        // Single-class (P-K) lies between the two priority classes.
        let w = mg1_priority_wait(resid, 0.0, rho_h + rho_l, false);
        assert!(wh < w && w < wl);
        // Saturated channels return infinity rather than negative waits.
        assert!(mg1_priority_wait(resid, 1.0, 1.0, true).is_infinite());
        assert!(mg1_priority_wait(resid, 0.2, 1.0, false).is_infinite());
    }

    #[test]
    fn saturation_prediction_plausible_on_halves() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        let p = predict_app_saturation(
            &c,
            &region,
            0,
            &AppSpec::intra_only(0.0),
            RoutingKind::Adaptive,
        )
        .unwrap();
        assert!(
            p.load > 0.15 && p.load < 0.9,
            "implausible prediction {p:?}"
        );
        // The bottleneck of intra-half UR is a router-to-router channel,
        // not an injection port.
        assert!(matches!(p.bottleneck, Link::Hop(_, _)), "{p:?}");
    }

    #[test]
    fn adaptive_never_loads_bottleneck_more_than_dor() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        let spec = AppSpec::intra_only(0.0);
        let dor = predict_app_saturation(&c, &region, 0, &spec, RoutingKind::DimensionOrder)
            .unwrap()
            .channel_load;
        let ada = predict_app_saturation(&c, &region, 0, &spec, RoutingKind::Adaptive)
            .unwrap()
            .channel_load;
        assert!(ada <= dor + 1e-9, "adaptive {ada} vs dor {dor}");
    }

    #[test]
    fn latency_is_monotone_in_load_and_prioritizes_native() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        // App 0 sends 40% of its traffic into app 1's region; app 1 idles
        // at a low intra load. Foreign traffic crosses app 1's channels.
        let specs_at = |rate: f64| {
            vec![
                Some(AppSpec::with_inter(rate, 0.4, InterDest::Region(1))),
                Some(AppSpec::intra_only(0.05)),
            ]
        };
        let mut prev = 0.0;
        for rate in [0.05, 0.15, 0.25, 0.35] {
            let lat = predict_latencies(
                &c,
                &region,
                &specs_at(rate),
                RoutingKind::Adaptive,
                PriorityMode::None,
            );
            let l0 = lat[0].unwrap();
            assert!(l0 >= prev, "latency not monotone at {rate}: {l0} < {prev}");
            prev = l0;
        }
        // Under native-high priority, app 1 (native everywhere it travels)
        // beats its own single-class latency; the invader pays.
        let specs = specs_at(0.3);
        let none = predict_latencies(
            &c,
            &region,
            &specs,
            RoutingKind::Adaptive,
            PriorityMode::None,
        );
        let native = predict_latencies(
            &c,
            &region,
            &specs,
            RoutingKind::Adaptive,
            PriorityMode::NativeHigh,
        );
        assert!(native[1].unwrap() <= none[1].unwrap() + 1e-9);
        assert!(native[0].unwrap() >= none[0].unwrap() - 1e-9);
        // Silent app slots predict no latency.
        let lat = predict_latencies(
            &c,
            &region,
            &[Some(AppSpec::intra_only(0.2)), None],
            RoutingKind::Adaptive,
            PriorityMode::NativeHigh,
        );
        assert!(lat[0].is_some() && lat[1].is_none());
    }

    #[test]
    fn link_load_map_is_conservative_and_class_split() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        // App 0 sends 40% of its flits into app 1's half: those flows are
        // foreign on channels inside app 1's region.
        let specs = vec![
            Some(AppSpec::with_inter(0.2, 0.4, InterDest::Region(1))),
            Some(AppSpec::intra_only(0.1)),
        ];
        let map = link_load_map(&c, &region, &specs, RoutingKind::Adaptive);
        assert!(!map.is_empty());
        assert!(map.iter().all(|cl| {
            cl.rho_native >= 0.0 && cl.rho_foreign >= 0.0 && cl.capacity > 0.0 && cl.capacity <= 1.0
        }));
        assert!(
            map.iter().any(|cl| cl.rho_foreign > 0.0),
            "inter-region traffic must show up as foreign load"
        );
        // Labels are stable and link-shaped.
        let labels: Vec<String> = map.iter().take(2).map(|cl| cl.link.to_string()).collect();
        assert!(labels[0].starts_with("inject(n"), "{labels:?}");
        // At a tiny offered load nothing is over-subscribed.
        assert!(map.iter().all(|cl| cl.rho_total() < 1.0));
    }

    #[test]
    fn warm_hint_margin_is_clamped() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        let h = warm_hint(
            &c,
            &region,
            0,
            &AppSpec::intra_only(0.0),
            RoutingKind::Adaptive,
        )
        .unwrap();
        assert!(h.margin >= MIN_WARM_MARGIN && h.margin <= MAX_WARM_MARGIN);
        assert!(h.predicted > 0.0);
    }
}
