//! Cross-validation of the analytical model against the simulator, plus
//! the model-sanity suite. CI runs this in release under `RAIR_ORACLE=1`
//! so every probe simulation executed here is also oracle-checked.

use model::{predict_app_saturation, predict_latencies, warm_hint, PriorityMode, RoutingKind};
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use noc_sim::topology::TopologyKind;
use rair::scheme::Routing;
use traffic::saturation::{app_saturation_traced, SaturationProbe};
use traffic::scenario::{AppSpec, InterDest};

fn kind_of(r: Routing) -> RoutingKind {
    match r {
        Routing::Xy => RoutingKind::DimensionOrder,
        _ => RoutingKind::Adaptive,
    }
}

/// A deliberately short probe for the identity matrix: bit-identity of the
/// warm-started search must hold for *any* probe, including one the model
/// was never calibrated against (short windows shift the measured loads,
/// exercising both the accepted and the rejected/fallback paths).
fn mini_probe() -> SaturationProbe {
    SaturationProbe {
        warmup: 300,
        measure: 1_200,
        iters: 4,
        ..SaturationProbe::default()
    }
}

/// The headline warm-start invariant on real networks: across routings and
/// topologies, the warm-started search returns the bit-identical load of
/// the cold one — golden digests cannot depend on the model.
#[test]
fn warm_and_cold_searches_are_bit_identical_across_routing_and_topology() {
    let probe = mini_probe();
    let mut cases: Vec<(SimConfig, Routing)> = [Routing::Local, Routing::Xy, Routing::Dbar]
        .into_iter()
        .map(|r| (SimConfig::table1(), r))
        .collect();
    for kind in [
        TopologyKind::Torus,
        TopologyKind::Ring,
        TopologyKind::CMesh { concentration: 4 },
    ] {
        cases.push((SimConfig::table1_topology(kind), Routing::Local));
    }
    for (cfg, routing) in cases {
        let region = RegionMap::halves(&cfg);
        let spec = AppSpec::intra_only(0.0);
        let hint = warm_hint(&cfg, &region, 0, &spec, kind_of(routing));
        assert!(
            hint.is_some(),
            "model declined a hint on {}/{routing:?}",
            cfg.topology.label()
        );
        let cold = app_saturation_traced(&probe, &cfg, &region, 0, &spec, None, || routing.build());
        let warm = app_saturation_traced(&probe, &cfg, &region, 0, &spec, hint, || routing.build());
        assert_eq!(
            warm.load.to_bits(),
            cold.load.to_bits(),
            "warm diverged on {}/{routing:?} ({:?}): {} vs {}",
            cfg.topology.label(),
            warm.warm,
            warm.load,
            cold.load
        );
    }
}

/// Pinned accuracy bound on the paper's Table-1 regionalizations. The
/// full-probe calibration error on these configs is well under 0.08
/// relative; the quick probe used here measures slightly higher loads, so
/// the pin is 0.15 — tight enough to catch a broken load map or a
/// miscalibrated efficiency, loose enough to survive probe-length shifts.
#[test]
fn predicted_saturation_tracks_the_simulator_on_table1_configs() {
    let probe = SaturationProbe::quick();
    let cfg = SimConfig::table1();
    let spec = AppSpec::intra_only(0.0);
    for (label, region, app) in [
        ("halves", RegionMap::halves(&cfg), 0u8),
        ("quadrants", RegionMap::quadrants(&cfg), 0u8),
    ] {
        let pred = predict_app_saturation(&cfg, &region, app, &spec, RoutingKind::Adaptive)
            .expect("model must predict Table-1 configs")
            .load;
        let measured = app_saturation_traced(&probe, &cfg, &region, app, &spec, None, || {
            Routing::Local.build()
        })
        .load;
        let rel = (pred - measured) / measured;
        assert!(
            rel.abs() < 0.15,
            "{label}: predicted {pred:.4} vs measured {measured:.4} (rel {rel:+.3})"
        );
    }
}

/// Sanity: predicted latency is finite, above the zero-load floor, and
/// non-decreasing in offered load up to near saturation.
#[test]
fn predicted_latency_is_monotone_in_load() {
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);
    let sat = predict_app_saturation(
        &cfg,
        &region,
        0,
        &AppSpec::intra_only(0.0),
        RoutingKind::Adaptive,
    )
    .unwrap()
    .load;
    let mut prev = 0.0;
    for frac in [0.1, 0.3, 0.5, 0.7, 0.85] {
        let specs = vec![
            Some(AppSpec::intra_only(frac * sat)),
            Some(AppSpec::intra_only(frac * sat)),
        ];
        let lat = predict_latencies(
            &cfg,
            &region,
            &specs,
            RoutingKind::Adaptive,
            PriorityMode::None,
        )[0]
        .expect("latency defined below saturation");
        assert!(lat.is_finite() && lat > 10.0, "frac {frac}: latency {lat}");
        assert!(
            lat >= prev,
            "latency fell from {prev} to {lat} at frac {frac}"
        );
        prev = lat;
    }
}

/// Sanity: under RAIR's native-high priority, the region's native
/// application never predicts worse latency than under round-robin, and
/// the foreign (cross-region) application never predicts better — priority
/// moves queueing delay from native onto foreign traffic at shared links.
#[test]
fn priority_shifts_predicted_waiting_from_native_to_foreign() {
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);
    let sat = predict_app_saturation(
        &cfg,
        &region,
        0,
        &AppSpec::intra_only(0.0),
        RoutingKind::Adaptive,
    )
    .unwrap()
    .load;
    let rate = 0.6 * sat;
    // App 0 pushes 40% of its load into app 1's region; app 1 stays home.
    let specs = vec![
        Some(AppSpec::with_inter(rate, 0.4, InterDest::Region(1))),
        Some(AppSpec::intra_only(rate)),
    ];
    let base = predict_latencies(
        &cfg,
        &region,
        &specs,
        RoutingKind::Adaptive,
        PriorityMode::None,
    );
    let prio = predict_latencies(
        &cfg,
        &region,
        &specs,
        RoutingKind::Adaptive,
        PriorityMode::NativeHigh,
    );
    let (b0, b1) = (base[0].unwrap(), base[1].unwrap());
    let (p0, p1) = (prio[0].unwrap(), prio[1].unwrap());
    assert!(p1 <= b1 + 1e-9, "native app got worse: {b1} -> {p1}");
    assert!(p0 >= b0 - 1e-9, "foreign app got better: {b0} -> {p0}");
    // And the shift is real at this load, not a degenerate equality.
    assert!(
        p0 > b0 || p1 < b1,
        "priority had no predicted effect at 60% saturation"
    );
}
