//! Small identifier types shared across the simulator.

use serde::{Deserialize, Serialize};

/// Node/router identifier (row-major index into the mesh).
pub type NodeId = u16;

/// Application identifier. Each concurrently running application gets one;
/// routers are tagged with the application assigned to their region.
pub type AppId = u8;

/// Routers not assigned to any application (e.g. dedicated memory-controller
/// tiles) carry this tag; all traffic is treated as native there.
pub const APP_NONE: AppId = AppId::MAX;

/// Message class (virtual network). Synthetic runs use one class; closed-loop
/// request/reply workloads use two.
pub type MsgClass = u8;

/// Router port index. `PORT_LOCAL` is the NI port; the rest are mesh links.
pub type Port = usize;

pub const PORT_LOCAL: Port = 0;
pub const PORT_NORTH: Port = 1;
pub const PORT_EAST: Port = 2;
pub const PORT_SOUTH: Port = 3;
pub const PORT_WEST: Port = 4;
/// Ports per router in a 2-D mesh (local + 4 directions).
pub const NUM_PORTS: usize = 5;

/// Opposite direction of a (non-local) port: flits leaving output port `p`
/// arrive at the neighbor's input port `opposite(p)`.
#[inline]
pub fn opposite(p: Port) -> Port {
    match p {
        PORT_NORTH => PORT_SOUTH,
        PORT_SOUTH => PORT_NORTH,
        PORT_EAST => PORT_WEST,
        PORT_WEST => PORT_EAST,
        _ => panic!("opposite() of non-mesh port {p}"),
    }
}

/// Human-readable port name (debug output).
pub fn port_name(p: Port) -> &'static str {
    match p {
        PORT_LOCAL => "L",
        PORT_NORTH => "N",
        PORT_EAST => "E",
        PORT_SOUTH => "S",
        PORT_WEST => "W",
        _ => "?",
    }
}

/// 2-D mesh coordinate. `x` grows eastward, `y` grows southward
/// (row-major: `id = y * width + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    pub x: u8,
    pub y: u8,
}

impl Coord {
    /// Manhattan distance (minimal hop count) to `other`.
    #[inline]
    pub fn hops_to(&self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for p in [PORT_NORTH, PORT_EAST, PORT_SOUTH, PORT_WEST] {
            assert_eq!(opposite(opposite(p)), p);
        }
    }

    #[test]
    #[should_panic]
    fn opposite_of_local_panics() {
        opposite(PORT_LOCAL);
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord { x: 1, y: 2 };
        let b = Coord { x: 4, y: 0 };
        assert_eq!(a.hops_to(b), 5);
        assert_eq!(b.hops_to(a), 5);
        assert_eq!(a.hops_to(a), 0);
    }
}
