//! Topology abstraction: mesh, torus, ring and concentrated mesh.
//!
//! The simulator kernel is topology-parameterized through two layers:
//!
//! 1. **Hot-path free functions** ([`distance`], [`step`], [`has_link`],
//!    [`productive_ports`], [`escape_hop`], …) taking `&SimConfig` and
//!    dispatching on [`SimConfig::topology`]. The cycle kernel, the
//!    routing algorithms, the invariant oracle and the static verifier
//!    all route their geometry through these, so a single match (usually
//!    branch-predicted perfectly — the kind never changes mid-run)
//!    replaces the old hardwired mesh arithmetic.
//! 2. **The [`Topology`] trait** with one implementation per kind
//!    ([`MeshTopology`], [`TorusTopology`], [`RingTopology`],
//!    [`CMeshTopology`]), delegating to the free functions. This is the
//!    public enumeration surface (neighbor iteration, next-hop
//!    enumeration for the verifier, band partitioning) and the shape a
//!    future irregular topology would plug into.
//!
//! ## Escape routing per topology
//!
//! Every topology ships a deadlock-free escape function (Duato's theory:
//! the escape VCs must form an acyclic channel dependency graph, and the
//! extended escape → adaptive* → escape dependencies must not close
//! cycles either — the static verifier in [`crate::verify`] proves both
//! for every constructed network):
//!
//! * **Mesh / concentrated mesh** — dimension-order XY on one escape
//!   lane per class. Acyclic by the classic turn-model argument.
//! * **Torus / ring** (a ring is a 1-D torus) — dimension-order over the
//!   *chosen minimal direction* per dimension (ties at exactly half the
//!   ring go east/south, deterministically), with **two escape lanes per
//!   class** playing the role of dateline VCs: a packet travels on
//!   lane 1 while the remainder of its path in the chosen direction
//!   still crosses that direction's wraparound link, and on lane 0 after
//!   (or if it never does). Within one direction the lane-1 channel
//!   chain feeds the wrap link which feeds the lane-0 chain — a total
//!   order, hence acyclic; X channels strictly precede Y channels; and
//!   because the adaptive productive ports on a torus are restricted to
//!   the *same* chosen minimal directions, adaptive detours can only
//!   move a packet further along that order, so the extended
//!   dependencies stay acyclic too (the verifier checks this
//!   computationally rather than trusting the argument).
//!
//! ## Concentration
//!
//! A concentrated mesh keeps `NUM_PORTS` and the router microarchitecture
//! unchanged: `concentration` nodes share each router's single local
//! port, injecting into distinct local input VCs (one flit per cycle per
//! node, as before). Node `n` maps to router `n / concentration`; all
//! nodes of a router share the router's coordinate and region
//! application. Ejection demultiplexes on the packet's destination node.
//!
//! ## What stays mesh-only
//!
//! The fault/resilience subsystem ([`crate::fault`]) — its detour escape
//! function is a turn-model argument specific to the mesh, so
//! [`SimConfig::validate`] rejects non-empty fault timelines on other
//! topologies rather than shipping an unproven degraded-routing
//! function.

use crate::config::SimConfig;
use crate::ids::{Coord, Port, PORT_EAST, PORT_LOCAL, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use crate::routing::NextHops;
use serde::{Deserialize, Serialize};

/// Which topology a [`SimConfig`] describes. Carried in the config (and
/// folded into behavioral digests only when not the default mesh, so all
/// pre-existing mesh digests and cache keys are unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TopologyKind {
    /// 2-D mesh, `width × height` (the paper's topology).
    #[default]
    Mesh,
    /// 2-D torus: mesh plus per-row and per-column wraparound links.
    Torus,
    /// 1-D bidirectional ring of `width` routers (`height` must be 1).
    Ring,
    /// Concentrated mesh: a `width × height` router grid with
    /// `concentration` nodes sharing each router's local port.
    CMesh {
        /// Nodes per router (≥ 2; 4 is the conventional choice).
        concentration: u8,
    },
}

impl TopologyKind {
    /// Short lowercase label (also the `--topology` CLI spelling).
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
            TopologyKind::CMesh { .. } => "cmesh",
        }
    }

    /// Parse a CLI spelling (`mesh`, `torus`, `ring`, `cmesh` or
    /// `cmesh:<c>` with `c` in 2..=8). `cmesh` without a factor means
    /// concentration 4; anything else — unknown kinds, `cmesh:0`,
    /// `cmesh:1` (that's a mesh) or past-8 concentrations the router
    /// model does not support — is rejected rather than deferred to a
    /// later panic in config validation.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mesh" => Some(TopologyKind::Mesh),
            "torus" => Some(TopologyKind::Torus),
            "ring" => Some(TopologyKind::Ring),
            "cmesh" => Some(TopologyKind::CMesh { concentration: 4 }),
            _ => {
                let c: u8 = s.strip_prefix("cmesh:")?.parse().ok()?;
                (2..=8)
                    .contains(&c)
                    .then_some(TopologyKind::CMesh { concentration: c })
            }
        }
    }

    /// Escape lanes per message class: torus and ring need a second
    /// (dateline) lane; mesh variants need one.
    #[inline]
    pub fn escape_lanes(self) -> usize {
        match self {
            TopologyKind::Torus | TopologyKind::Ring => 2,
            TopologyKind::Mesh | TopologyKind::CMesh { .. } => 1,
        }
    }

    /// Nodes per router.
    #[inline]
    pub fn concentration(self) -> usize {
        match self {
            TopologyKind::CMesh { concentration } => concentration as usize,
            _ => 1,
        }
    }

    /// Do links wrap around in X (and, unless a ring, in Y)?
    #[inline]
    pub fn wraps(self) -> bool {
        matches!(self, TopologyKind::Torus | TopologyKind::Ring)
    }

    /// Fold into a digest. Only called for non-mesh kinds (the mesh is
    /// digest-transparent so pre-existing goldens and cache keys hold).
    pub fn digest_into(self, d: &mut metrics::Digest) {
        match self {
            TopologyKind::Mesh => d.write_u64(0),
            TopologyKind::Torus => d.write_u64(1),
            TopologyKind::Ring => d.write_u64(2),
            TopologyKind::CMesh { concentration } => {
                d.write_u64(3);
                d.write_u64(concentration as u64);
            }
        }
    }

    /// The trait-object view of this kind (enumeration / verifier
    /// surface; the kernel uses the free functions directly).
    pub fn build(self) -> Box<dyn Topology> {
        match self {
            TopologyKind::Mesh => Box::new(MeshTopology),
            TopologyKind::Torus => Box::new(TorusTopology),
            TopologyKind::Ring => Box::new(RingTopology),
            TopologyKind::CMesh { concentration } => Box::new(CMeshTopology { concentration }),
        }
    }
}

/// Per-dimension distance: wrapped minimum on a torus/ring dimension,
/// plain offset otherwise.
#[inline]
fn dim_dist(wrap: bool, a: u8, b: u8, size: u8) -> u32 {
    let d = u32::from(a.abs_diff(b));
    if wrap {
        d.min(u32::from(size) - d)
    } else {
        d
    }
}

/// Minimal hop distance between two router coordinates.
#[inline]
pub fn distance(cfg: &SimConfig, a: Coord, b: Coord) -> u32 {
    if cfg.topology.wraps() {
        dim_dist(true, a.x, b.x, cfg.width)
            + if cfg.topology == TopologyKind::Ring {
                0
            } else {
                dim_dist(true, a.y, b.y, cfg.height)
            }
    } else {
        a.hops_to(b)
    }
}

/// Does the directed link out of `c` through port `p` exist?
#[inline]
pub fn has_link(cfg: &SimConfig, c: Coord, p: Port) -> bool {
    match cfg.topology {
        TopologyKind::Mesh | TopologyKind::CMesh { .. } => match p {
            PORT_NORTH => c.y > 0,
            PORT_SOUTH => c.y + 1 < cfg.height,
            PORT_EAST => c.x + 1 < cfg.width,
            PORT_WEST => c.x > 0,
            _ => false,
        },
        TopologyKind::Torus => (1..=4).contains(&p),
        TopologyKind::Ring => p == PORT_EAST || p == PORT_WEST,
    }
}

/// Step one hop from `c` through port `p`, wrapping on torus/ring
/// dimensions. The link must exist ([`has_link`]).
#[inline]
pub fn step(cfg: &SimConfig, c: Coord, p: Port) -> Coord {
    debug_assert!(has_link(cfg, c, p), "step() through missing link {p}");
    let (w, h) = (cfg.width, cfg.height);
    match p {
        PORT_NORTH => Coord {
            x: c.x,
            y: if c.y == 0 { h - 1 } else { c.y - 1 },
        },
        PORT_SOUTH => Coord {
            x: c.x,
            y: if c.y + 1 == h { 0 } else { c.y + 1 },
        },
        PORT_EAST => Coord {
            x: if c.x + 1 == w { 0 } else { c.x + 1 },
            y: c.y,
        },
        PORT_WEST => Coord {
            x: if c.x == 0 { w - 1 } else { c.x - 1 },
            y: c.y,
        },
        _ => panic!("step() through non-link port {p}"),
    }
}

/// The chosen minimal X-direction port toward `dst` (`None` when the X
/// offset is resolved). On wrapping topologies ties at exactly half the
/// ring go east, deterministically, so every router along a minimal path
/// agrees on the direction.
#[inline]
fn x_dir(cfg: &SimConfig, cur: Coord, dst: Coord) -> Option<Port> {
    if cfg.topology.wraps() {
        let w = u32::from(cfg.width);
        let east = (u32::from(dst.x) + w - u32::from(cur.x)) % w;
        if east == 0 {
            None
        } else if east <= w - east {
            Some(PORT_EAST)
        } else {
            Some(PORT_WEST)
        }
    } else if dst.x > cur.x {
        Some(PORT_EAST)
    } else if dst.x < cur.x {
        Some(PORT_WEST)
    } else {
        None
    }
}

/// The chosen minimal Y-direction port toward `dst` (ties go south on a
/// torus). Always `None` on a ring.
#[inline]
fn y_dir(cfg: &SimConfig, cur: Coord, dst: Coord) -> Option<Port> {
    if cfg.topology == TopologyKind::Ring {
        return None;
    }
    if cfg.topology.wraps() {
        let h = u32::from(cfg.height);
        let south = (u32::from(dst.y) + h - u32::from(cur.y)) % h;
        if south == 0 {
            None
        } else if south <= h - south {
            Some(PORT_SOUTH)
        } else {
            Some(PORT_NORTH)
        }
    } else if dst.y > cur.y {
        Some(PORT_SOUTH)
    } else if dst.y < cur.y {
        Some(PORT_NORTH)
    } else {
        None
    }
}

/// The (up to two) productive output ports from `cur` toward `dst` —
/// one per dimension. On wrapping topologies only the *chosen* minimal
/// direction per dimension is productive (both directions may be
/// minimal at exactly half the ring, but offering both would let
/// adaptive hops run against the dateline order; see the module docs).
#[inline]
pub fn productive_ports(cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2] {
    [x_dir(cfg, cur, dst), y_dir(cfg, cur, dst)]
}

/// The escape hop from `cur` toward `dst`: the dimension-order port over
/// the chosen minimal directions, plus the escape *lane* a packet
/// entering an escape VC here must use. Lane 1 while the remaining path
/// in the chosen direction still crosses that direction's wraparound
/// link, lane 0 after — the dateline scheme; always lane 0 on mesh
/// variants. Returns `(PORT_LOCAL, 0)` at the destination.
#[inline]
pub fn escape_hop(cfg: &SimConfig, cur: Coord, dst: Coord) -> (Port, u8) {
    if !cfg.topology.wraps() {
        return (crate::routing::escape_port(cur, dst), 0);
    }
    if let Some(p) = x_dir(cfg, cur, dst) {
        // Going east the wrap link is crossed iff the destination column
        // is behind us (dst.x < cur.x); symmetrically for west.
        let lane = match p {
            PORT_EAST => dst.x < cur.x,
            _ => dst.x > cur.x,
        };
        (p, u8::from(lane))
    } else if let Some(p) = y_dir(cfg, cur, dst) {
        let lane = match p {
            PORT_SOUTH => dst.y < cur.y,
            _ => dst.y > cur.y,
        };
        (p, u8::from(lane))
    } else {
        (PORT_LOCAL, 0)
    }
}

/// Router index reached from router `r` through port `p`.
#[inline]
pub fn neighbor_router(cfg: &SimConfig, r: usize, p: Port) -> usize {
    cfg.router_at(step(cfg, cfg.router_coord(r), p))
}

/// Contiguous router bands for the sharded tick engine: `num_bands`
/// equal chunks of the row-major router order (every supported topology
/// numbers routers row-major, so chunks are spatially contiguous and
/// concatenating band outputs in band order reproduces the scalar
/// engine's single ascending sweep).
pub fn contiguous_bands(cfg: &SimConfig, num_bands: usize) -> Vec<(usize, usize)> {
    let n = cfg.num_routers();
    let chunk = n.div_ceil(num_bands);
    (0..n.div_ceil(chunk))
        .map(|b| (b * chunk, ((b + 1) * chunk).min(n)))
        .collect()
}

/// The trait view of a topology: node/router enumeration, link
/// iteration, minimal distance and the per-topology deadlock-free escape
/// function. The kernel's hot path uses the free functions of this
/// module directly (static dispatch); the trait is the enumeration
/// surface for the verifier, tooling and tests.
pub trait Topology: Send + Sync {
    /// Which [`TopologyKind`] this is.
    fn kind(&self) -> TopologyKind;

    /// Short lowercase name.
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// Escape lanes per message class ([`TopologyKind::escape_lanes`]).
    fn escape_lanes(&self) -> usize {
        self.kind().escape_lanes()
    }

    /// Number of routers.
    fn num_routers(&self, cfg: &SimConfig) -> usize {
        cfg.num_routers()
    }

    /// Number of nodes (NIs) — `concentration ×` routers.
    fn num_nodes(&self, cfg: &SimConfig) -> usize {
        cfg.num_routers() * self.kind().concentration()
    }

    /// Does the directed link out of `c` through `p` exist?
    fn has_link(&self, cfg: &SimConfig, c: Coord, p: Port) -> bool;

    /// One hop through an existing link.
    fn step(&self, cfg: &SimConfig, c: Coord, p: Port) -> Coord;

    /// Minimal hop distance.
    fn distance(&self, cfg: &SimConfig, a: Coord, b: Coord) -> u32;

    /// Productive (minimal, chosen-direction) ports, one per dimension.
    fn productive_ports(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2];

    /// The escape port and lane from `cur` toward `dst`.
    fn escape_hop(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> (Port, u8);

    /// Every outgoing link of `c` as `(port, neighbor)`.
    fn neighbors(&self, cfg: &SimConfig, c: Coord) -> Vec<(Port, Coord)> {
        (1..crate::ids::NUM_PORTS)
            .filter(|&p| self.has_link(cfg, c, p))
            .map(|p| (p, self.step(cfg, c, p)))
            .collect()
    }

    /// The fully-adaptive-plus-escape next-hop enumeration the static
    /// verifier treats as the maximal legal routing relation at
    /// `(cur, dst)`.
    fn next_hops(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> NextHops {
        let (escape, escape_lane) = self.escape_hop(cfg, cur, dst);
        NextHops {
            adaptive: self.productive_ports(cfg, cur, dst),
            escape,
            escape_lane,
        }
    }

    /// Contiguous router bands for the sharded engine.
    fn bands(&self, cfg: &SimConfig, num_bands: usize) -> Vec<(usize, usize)> {
        contiguous_bands(cfg, num_bands)
    }
}

macro_rules! delegate_topology {
    ($ty:ty, $kind:expr) => {
        impl Topology for $ty {
            fn kind(&self) -> TopologyKind {
                $kind(self)
            }
            fn has_link(&self, cfg: &SimConfig, c: Coord, p: Port) -> bool {
                debug_assert_eq!(cfg.topology, self.kind());
                has_link(cfg, c, p)
            }
            fn step(&self, cfg: &SimConfig, c: Coord, p: Port) -> Coord {
                debug_assert_eq!(cfg.topology, self.kind());
                step(cfg, c, p)
            }
            fn distance(&self, cfg: &SimConfig, a: Coord, b: Coord) -> u32 {
                debug_assert_eq!(cfg.topology, self.kind());
                distance(cfg, a, b)
            }
            fn productive_ports(
                &self,
                cfg: &SimConfig,
                cur: Coord,
                dst: Coord,
            ) -> [Option<Port>; 2] {
                debug_assert_eq!(cfg.topology, self.kind());
                productive_ports(cfg, cur, dst)
            }
            fn escape_hop(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> (Port, u8) {
                debug_assert_eq!(cfg.topology, self.kind());
                escape_hop(cfg, cur, dst)
            }
        }
    };
}

/// The paper's 2-D mesh (any radix the `u64` VC bitsets allow).
pub struct MeshTopology;
/// 2-D torus with dateline escape lanes.
pub struct TorusTopology;
/// 1-D bidirectional ring (a one-row torus).
pub struct RingTopology;
/// Concentrated mesh: `concentration` nodes per router.
pub struct CMeshTopology {
    /// Nodes per router.
    pub concentration: u8,
}

delegate_topology!(MeshTopology, |_t: &MeshTopology| TopologyKind::Mesh);
delegate_topology!(TorusTopology, |_t: &TorusTopology| TopologyKind::Torus);
delegate_topology!(RingTopology, |_t: &RingTopology| TopologyKind::Ring);
delegate_topology!(CMeshTopology, |t: &CMeshTopology| TopologyKind::CMesh {
    concentration: t.concentration
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn c(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }

    fn cfg_kind(kind: TopologyKind, width: u8, height: u8) -> SimConfig {
        let mut cfg = SimConfig::table1();
        cfg.topology = kind;
        cfg.width = width;
        cfg.height = height;
        cfg
    }

    fn all_pairs(cfg: &SimConfig) -> Vec<(Coord, Coord)> {
        let mut v = Vec::new();
        for a in 0..cfg.num_routers() {
            for b in 0..cfg.num_routers() {
                v.push((cfg.router_coord(a), cfg.router_coord(b)));
            }
        }
        v
    }

    #[test]
    fn parse_roundtrips_labels() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::CMesh { concentration: 4 },
        ] {
            assert_eq!(TopologyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(
            TopologyKind::parse("cmesh:2"),
            Some(TopologyKind::CMesh { concentration: 2 })
        );
        assert_eq!(
            TopologyKind::parse("cmesh:8"),
            Some(TopologyKind::CMesh { concentration: 8 })
        );
        assert_eq!(TopologyKind::parse("hypercube"), None);
        // Out-of-range concentrations fail at parse time, not later in
        // config validation: 0/1 collapse to a mesh, 9+ exceed the model.
        for bad in [
            "cmesh:0",
            "cmesh:1",
            "cmesh:9",
            "cmesh:255",
            "cmesh:-1",
            "cmesh:",
        ] {
            assert_eq!(TopologyKind::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let cfg = cfg_kind(TopologyKind::Torus, 8, 8);
        assert_eq!(distance(&cfg, c(0, 0), c(7, 0)), 1);
        assert_eq!(distance(&cfg, c(0, 0), c(4, 4)), 8);
        assert_eq!(distance(&cfg, c(1, 1), c(6, 7)), 3 + 2);
        for (a, b) in all_pairs(&cfg) {
            assert_eq!(distance(&cfg, a, b), distance(&cfg, b, a));
        }
    }

    #[test]
    fn ring_distance_is_circular() {
        let cfg = cfg_kind(TopologyKind::Ring, 10, 1);
        assert_eq!(distance(&cfg, c(0, 0), c(9, 0)), 1);
        assert_eq!(distance(&cfg, c(0, 0), c(5, 0)), 5);
        assert_eq!(distance(&cfg, c(2, 0), c(8, 0)), 4);
    }

    #[test]
    fn step_is_inverse_of_opposite_step() {
        use crate::ids::opposite;
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::CMesh { concentration: 4 },
        ] {
            let cfg = cfg_kind(kind, 5, 4);
            for r in 0..cfg.num_routers() {
                let a = cfg.router_coord(r);
                for p in 1..crate::ids::NUM_PORTS {
                    if !has_link(&cfg, a, p) {
                        continue;
                    }
                    let b = step(&cfg, a, p);
                    assert!(has_link(&cfg, b, opposite(p)), "{kind:?} {a:?} {p}");
                    assert_eq!(step(&cfg, b, opposite(p)), a, "{kind:?} {a:?} {p}");
                }
            }
        }
    }

    #[test]
    fn ring_has_no_vertical_links() {
        let cfg = cfg_kind(TopologyKind::Ring, 8, 1);
        for x in 0..8 {
            assert!(has_link(&cfg, c(x, 0), PORT_EAST));
            assert!(has_link(&cfg, c(x, 0), PORT_WEST));
            assert!(!has_link(&cfg, c(x, 0), PORT_NORTH));
            assert!(!has_link(&cfg, c(x, 0), PORT_SOUTH));
        }
    }

    #[test]
    fn productive_ports_reduce_topology_distance() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::CMesh { concentration: 2 },
        ] {
            let (w, h) = if kind == TopologyKind::Ring {
                (9, 1)
            } else {
                (5, 4)
            };
            let cfg = cfg_kind(kind, w, h);
            for (a, b) in all_pairs(&cfg) {
                if a == b {
                    continue;
                }
                let ports = productive_ports(&cfg, a, b);
                assert!(ports.iter().flatten().count() > 0, "{kind:?} {a:?}->{b:?}");
                for p in ports.into_iter().flatten() {
                    assert!(has_link(&cfg, a, p));
                    assert_eq!(
                        distance(&cfg, step(&cfg, a, p), b) + 1,
                        distance(&cfg, a, b),
                        "{kind:?} {a:?}->{b:?} via {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn escape_walk_terminates_and_is_minimal() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::CMesh { concentration: 4 },
        ] {
            let (w, h) = if kind == TopologyKind::Ring {
                (8, 1)
            } else {
                (4, 4)
            };
            let cfg = cfg_kind(kind, w, h);
            for (a, b) in all_pairs(&cfg) {
                let mut cur = a;
                let mut hops = 0;
                loop {
                    let (p, _lane) = escape_hop(&cfg, cur, b);
                    if p == PORT_LOCAL {
                        break;
                    }
                    assert_eq!(
                        distance(&cfg, step(&cfg, cur, p), b) + 1,
                        distance(&cfg, cur, b),
                        "{kind:?} escape not minimal at {cur:?} toward {b:?}"
                    );
                    cur = step(&cfg, cur, p);
                    hops += 1;
                    assert!(hops <= distance(&cfg, a, b), "{kind:?} escape loops");
                }
                assert_eq!(cur, b);
                assert_eq!(hops, distance(&cfg, a, b));
            }
        }
    }

    /// The dateline invariant: along any escape walk on a wrapping
    /// topology, within one dimension the lane sequence is a (possibly
    /// empty) run of 1s followed by a run of 0s — it never goes back up,
    /// and the 1→0 transition happens exactly at the wrap link.
    #[test]
    fn torus_escape_lanes_cross_dateline_once() {
        for (kind, w, h) in [
            (TopologyKind::Torus, 5, 5),
            (TopologyKind::Torus, 4, 6),
            (TopologyKind::Ring, 9, 1),
        ] {
            let cfg = cfg_kind(kind, w, h);
            for (a, b) in all_pairs(&cfg) {
                let mut cur = a;
                let mut last: Option<(Port, u8)> = None;
                loop {
                    let (p, lane) = escape_hop(&cfg, cur, b);
                    if p == PORT_LOCAL {
                        break;
                    }
                    if let Some((lp, ll)) = last {
                        if lp == p {
                            assert!(lane <= ll, "lane rose {a:?}->{b:?} at {cur:?}");
                        }
                    }
                    let nxt = step(&cfg, cur, p);
                    let wrapped = match p {
                        PORT_EAST => nxt.x < cur.x,
                        PORT_WEST => nxt.x > cur.x,
                        PORT_SOUTH => nxt.y < cur.y,
                        _ => nxt.y > cur.y,
                    };
                    if wrapped {
                        assert_eq!(lane, 1, "wrap hop must ride lane 1 ({a:?}->{b:?})");
                    }
                    last = Some((p, lane));
                    cur = nxt;
                }
            }
        }
    }

    #[test]
    fn cmesh_node_router_mapping() {
        let cfg = cfg_kind(TopologyKind::CMesh { concentration: 4 }, 4, 4);
        assert_eq!(cfg.num_routers(), 16);
        assert_eq!(cfg.num_nodes(), 64);
        for n in 0..cfg.num_nodes() as NodeId {
            let r = cfg.router_of(n);
            assert_eq!(r, n as usize / 4);
            assert_eq!(cfg.router_at(cfg.coord_of(n)), r);
        }
        // node_at returns the base node of the router at that coordinate.
        assert_eq!(cfg.node_at(c(1, 0)), 4);
        assert_eq!(cfg.coord_of(5), c(1, 0));
    }

    #[test]
    fn bands_are_contiguous_and_cover() {
        for kind in [TopologyKind::Mesh, TopologyKind::Ring] {
            let (w, h) = if kind == TopologyKind::Ring {
                (13, 1)
            } else {
                (8, 8)
            };
            let cfg = cfg_kind(kind, w, h);
            for shards in [1, 2, 4, 5] {
                let bands = contiguous_bands(&cfg, shards);
                assert_eq!(bands.first().unwrap().0, 0);
                assert_eq!(bands.last().unwrap().1, cfg.num_routers());
                for win in bands.windows(2) {
                    assert_eq!(win[0].1, win[1].0);
                }
            }
        }
    }

    #[test]
    fn trait_objects_delegate() {
        let cfg = cfg_kind(TopologyKind::Torus, 6, 6);
        let t = cfg.topology.build();
        assert_eq!(t.name(), "torus");
        assert_eq!(t.escape_lanes(), 2);
        assert_eq!(t.num_routers(&cfg), 36);
        assert_eq!(t.distance(&cfg, c(0, 0), c(5, 5)), 2);
        assert_eq!(t.neighbors(&cfg, c(0, 0)).len(), 4);
        let nh = t.next_hops(&cfg, c(5, 3), c(1, 3));
        assert_eq!(nh.escape, PORT_EAST);
        assert_eq!(nh.escape_lane, 1);
        let mesh = cfg_kind(TopologyKind::Mesh, 8, 8);
        let t = mesh.topology.build();
        assert_eq!(t.neighbors(&mesh, c(0, 0)).len(), 2);
        assert_eq!(t.num_nodes(&mesh), 64);
    }
}
