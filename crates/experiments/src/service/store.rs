//! Injectable storage backend for the durability layer.
//!
//! Everything the experiment service persists — the job journal, result
//! records, sweep checkpoints, the saturation cache — goes through the
//! [`Store`] trait instead of calling `std::fs` directly. Production code
//! uses [`StdStore`]; tests and the `repro chaos` battery inject a
//! [`ChaosStore`] that deterministically turns individual operations into
//! the failures real disks produce: `EIO`, `ENOSPC`, torn appends (a
//! prefix of the bytes lands, then the write "fails"), and a crash between
//! writing a temp file and renaming it into place. Every IO failure path in
//! the service is therefore drivable from a test, with a seed instead of a
//! flaky loopback device.
//!
//! Two contracts matter to callers:
//!
//! - [`Store::append_durable`] opens, appends, and **fsyncs** before
//!   returning `Ok` — a journal or checkpoint row is only considered
//!   durable once the sync succeeded. An error may still have written a
//!   prefix (that is exactly the torn-tail case resume tolerates).
//! - [`Store::write_atomic`] goes through a temp file + rename, so readers
//!   never observe a half-written file — only the old contents, the new
//!   contents, or (after a crash between the two steps) a stray `.tmp.*`
//!   file that readers ignore.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `bytes`. Bitwise
/// rather than table-driven — the rows it guards are tens of bytes, and a
/// pinned, dependency-free implementation is worth more than throughput.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The filesystem operations the durability layer needs. Object-safe so
/// the service can hold `&dyn Store` / `Arc<dyn Store>`.
pub trait Store: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Write a whole file atomically (temp file + rename).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append bytes and fsync; `Ok` means the bytes are on stable storage.
    fn append_durable(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Rename a file (the commit step of out-of-band atomic protocols).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Does the path exist?
    fn exists(&self, path: &Path) -> bool;
}

/// Monotonic discriminator for temp-file names, so two concurrent atomic
/// writes to the same target in one process can never collide.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Name of the temp file `write_atomic` stages `path` through.
fn tmp_sibling(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map_or_else(|| "unnamed".into(), |s| s.to_string_lossy().into_owned());
    path.with_file_name(format!("{name}.tmp.{}.{n}", std::process::id()))
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct StdStore;

/// Process-wide [`StdStore`] instance for call sites that take `&dyn Store`
/// but have no injection seam of their own (the saturation cache, the
/// sweep checkpoint writer).
pub fn std_store() -> &'static StdStore {
    static STORE: StdStore = StdStore;
    &STORE
}

impl Store for StdStore {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, bytes)?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            // Don't leave the stray temp file behind on a failed commit;
            // the rename error is what the caller must see.
            if let Err(e) = std::fs::remove_file(&tmp) {
                eprintln!(
                    "[store] warning: could not clean temp file {}: {e}",
                    tmp.display()
                );
            }
        }
        renamed
    }

    fn append_durable(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// A fault class the chaos store can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `EIO` — the device-level read/write error.
    Eio,
    /// `ENOSPC` — the disk filled up mid-operation.
    Enospc,
    /// A torn append/write: a random prefix of the bytes lands before the
    /// operation "fails" (what a crash mid-`write(2)` leaves behind).
    Torn,
    /// For `write_atomic`: the temp file is written but the process
    /// "crashes" before the rename — the target keeps its old contents and
    /// a stray `.tmp.*` file survives.
    CrashBeforeRename,
}

impl Fault {
    fn error(self) -> io::Error {
        match self {
            // Raw OS errno so `ErrorKind` classification matches what a
            // real device would produce on this (Linux) container.
            Fault::Eio | Fault::Torn => io::Error::from_raw_os_error(5),
            Fault::Enospc => io::Error::from_raw_os_error(28),
            Fault::CrashBeforeRename => io::Error::other("simulated crash before rename"),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Fault::Eio => "EIO",
            Fault::Enospc => "ENOSPC",
            Fault::Torn => "torn-write",
            Fault::CrashBeforeRename => "crash-before-rename",
        }
    }
}

/// Per-mille injection rates for the seeded chaos mode. Rates apply per
/// *eligible operation* (torn only on appends/writes, crash-before-rename
/// only on atomic writes); classes are drawn in the declared order.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    pub seed: u64,
    pub eio_per_mille: u16,
    pub enospc_per_mille: u16,
    pub torn_per_mille: u16,
    pub crash_rename_per_mille: u16,
    /// Whether reads are also eligible for `EIO` (resume paths must treat
    /// an unreadable journal/cache as absent, never panic).
    pub fail_reads: bool,
}

impl ChaosConfig {
    /// An aggressive default battery mix: roughly one in four mutations
    /// faults, so even short sweeps exercise every failure class.
    pub fn battery(seed: u64) -> Self {
        Self {
            seed,
            eio_per_mille: 80,
            enospc_per_mille: 80,
            torn_per_mille: 80,
            crash_rename_per_mille: 120,
            fail_reads: false,
        }
    }
}

/// One injected fault, for assertions and the chaos report.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Global operation index at which the fault fired.
    pub op: u64,
    pub fault: Fault,
    pub path: String,
}

struct ChaosState {
    rng: u64,
    ops: u64,
    injected: Vec<Injection>,
}

/// A [`Store`] wrapping [`StdStore`] that deterministically injects
/// faults. Two modes, combinable:
///
/// - **Seeded**: every eligible operation draws from a seeded xorshift
///   RNG against the [`ChaosConfig`] per-mille rates. The same seed over
///   the same operation sequence injects the same faults.
/// - **Scripted**: [`ChaosStore::fail_op`] forces one specific fault at
///   one specific global operation index — the precision tool for "the
///   k-th append fails" tests.
pub struct ChaosStore {
    inner: StdStore,
    cfg: ChaosConfig,
    script: Vec<(u64, Fault)>,
    state: Mutex<ChaosState>,
}

impl ChaosStore {
    pub fn new(cfg: ChaosConfig) -> Self {
        Self {
            inner: StdStore,
            cfg,
            script: Vec::new(),
            state: Mutex::new(ChaosState {
                // xorshift must not start at 0; fold in a non-zero pad.
                rng: cfg.seed | 0x9E37_79B9_7F4A_7C15,
                ops: 0,
                injected: Vec::new(),
            }),
        }
    }

    /// A store that injects no seeded faults, only scripted ones.
    pub fn scripted(script: Vec<(u64, Fault)>) -> Self {
        let mut s = Self::new(ChaosConfig {
            seed: 0,
            eio_per_mille: 0,
            enospc_per_mille: 0,
            torn_per_mille: 0,
            crash_rename_per_mille: 0,
            fail_reads: false,
        });
        s.script = script;
        s
    }

    /// Add a scripted fault at global operation index `op`.
    #[must_use]
    pub fn fail_op(mut self, op: u64, fault: Fault) -> Self {
        self.script.push((op, fault));
        self
    }

    /// Faults injected so far (battery coverage assertions).
    pub fn injected(&self) -> Vec<Injection> {
        self.state.lock().unwrap().injected.clone()
    }

    /// Total operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Advance the op counter and decide whether this operation faults.
    /// `torn_ok`/`crash_ok` gate the classes that only make sense for some
    /// operations. Returns the fault plus the draw used for torn prefixes.
    fn draw(
        &self,
        path: &Path,
        torn_ok: bool,
        crash_ok: bool,
        is_read: bool,
    ) -> Option<(Fault, u64)> {
        let mut st = self.state.lock().unwrap();
        let op = st.ops;
        st.ops += 1;
        // xorshift64
        let mut x = st.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        st.rng = x;
        let scripted = self.script.iter().find(|(o, _)| *o == op).map(|(_, f)| *f);
        let fault = scripted.or_else(|| {
            if is_read && !self.cfg.fail_reads {
                return None;
            }
            let roll = (x % 1000) as u16;
            let classes: [(Fault, u16, bool); 4] = [
                (Fault::Eio, self.cfg.eio_per_mille, true),
                (Fault::Enospc, self.cfg.enospc_per_mille, !is_read),
                (Fault::Torn, self.cfg.torn_per_mille, torn_ok && !is_read),
                (
                    Fault::CrashBeforeRename,
                    self.cfg.crash_rename_per_mille,
                    crash_ok && !is_read,
                ),
            ];
            let mut lo = 0u16;
            for (f, rate, eligible) in classes {
                if !eligible {
                    continue;
                }
                if roll >= lo && roll < lo + rate {
                    return Some(f);
                }
                lo += rate;
            }
            None
        })?;
        st.injected.push(Injection {
            op,
            fault,
            path: path.display().to_string(),
        });
        Some((fault, x >> 10))
    }
}

impl Store for ChaosStore {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let Some((f, _)) = self.draw(path, false, false, true) {
            return Err(f.error());
        }
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.draw(path, true, true, false) {
            Some((Fault::CrashBeforeRename, _)) => {
                // The temp file lands; the rename never happens.
                let tmp = tmp_sibling(path);
                let write = std::fs::write(&tmp, bytes);
                debug_assert!(write.is_ok() || bytes.is_empty());
                Err(Fault::CrashBeforeRename.error())
            }
            Some((Fault::Torn, draw)) => {
                // A prefix of the *temp* file lands and the commit fails —
                // the target is untouched (that is what atomic means).
                let cut = (draw as usize) % bytes.len().max(1);
                let tmp = tmp_sibling(path);
                let write = std::fs::write(&tmp, &bytes[..cut]);
                debug_assert!(write.is_ok() || cut == 0);
                Err(Fault::Torn.error())
            }
            Some((f, _)) => Err(f.error()),
            None => self.inner.write_atomic(path, bytes),
        }
    }

    fn append_durable(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.draw(path, true, false, false) {
            Some((Fault::Torn, draw)) => {
                // A strict prefix lands before the failure — the exact torn
                // tail the journal's longest-valid-prefix replay tolerates.
                let cut = (draw as usize) % bytes.len().max(1);
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                f.write_all(&bytes[..cut])?;
                Err(Fault::Torn.error())
            }
            Some((f, _)) => Err(f.error()),
            None => self.inner.append_durable(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some((f, _)) = self.draw(from, false, false, false) {
            return Err(f.error());
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if let Some((f, _)) = self.draw(path, false, false, false) {
            return Err(f.error());
        }
        self.inner.remove(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if let Some((f, _)) = self.draw(path, false, false, false) {
            return Err(f.error());
        }
        self.inner.create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rair-store-{}-{tag}", std::process::id()));
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn std_store_roundtrip_append_and_atomic_write() {
        let dir = tmp_dir("std");
        let s = StdStore;
        let p = dir.join("file.txt");
        s.append_durable(&p, b"one\n").unwrap();
        s.append_durable(&p, b"two\n").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"one\ntwo\n");
        s.write_atomic(&p, b"replaced\n").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"replaced\n");
        // No temp files survive a completed atomic write.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "stray temp files: {strays:?}");
        s.remove(&p).unwrap();
        assert!(!s.exists(&p));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_store_is_deterministic_per_seed() {
        let dir = tmp_dir("det");
        let run = |seed: u64| {
            let s = ChaosStore::new(ChaosConfig::battery(seed));
            let mut outcomes = Vec::new();
            for i in 0..40 {
                let p = dir.join(format!("d{seed}-{i}.txt"));
                outcomes.push(s.append_durable(&p, b"row\n").is_ok());
            }
            (
                outcomes,
                s.injected()
                    .iter()
                    .map(|i| (i.op, i.fault))
                    .collect::<Vec<_>>(),
            )
        };
        let (o1, i1) = run(7);
        let (o2, i2) = run(7);
        assert_eq!(o1, o2, "same seed must fault the same ops");
        assert_eq!(i1, i2);
        assert!(
            !i1.is_empty(),
            "battery rates must inject something in 40 ops"
        );
        let (o3, _) = run(8);
        assert_ne!(o1, o3, "different seeds should differ (40 draws)");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scripted_torn_append_leaves_a_strict_prefix() {
        let dir = tmp_dir("torn");
        let p = dir.join("wal.txt");
        let s = ChaosStore::scripted(vec![(1, Fault::Torn)]);
        s.append_durable(&p, b"first-line-intact\n").unwrap();
        let err = s.append_durable(&p, b"second-line-torn\n").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5), "torn write surfaces as EIO");
        let bytes = std::fs::read(&p).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("first-line-intact\n"));
        assert!(
            text.len() < "first-line-intact\nsecond-line-torn\n".len(),
            "the torn append must not have landed fully: {text:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scripted_crash_before_rename_preserves_old_contents() {
        let dir = tmp_dir("crash");
        let p = dir.join("report.json");
        let s = ChaosStore::scripted(vec![(1, Fault::CrashBeforeRename)]);
        s.write_atomic(&p, b"old").unwrap();
        let err = s.write_atomic(&p, b"new").unwrap_err();
        assert!(err.to_string().contains("crash before rename"));
        assert_eq!(std::fs::read(&p).unwrap(), b"old", "target must be intact");
        // The stray temp file a real crash would leave behind exists.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert_eq!(strays.len(), 1, "expected the orphaned temp file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scripted_enospc_and_eio_error_kinds() {
        let dir = tmp_dir("errno");
        let s = ChaosStore::scripted(vec![(0, Fault::Enospc), (1, Fault::Eio)]);
        let p = dir.join("x");
        assert_eq!(
            s.append_durable(&p, b"a").unwrap_err().raw_os_error(),
            Some(28)
        );
        assert_eq!(
            s.append_durable(&p, b"a").unwrap_err().raw_os_error(),
            Some(5)
        );
        // Past the script, operations succeed.
        s.append_durable(&p, b"a").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
