//! # Static QoS admission pipeline.
//!
//! Given a full configuration (scheme × routing × topology × region map),
//! `admit` proves or refutes — *without running the simulator* — the
//! property families that make a config safe to hand to the sweep runner,
//! and folds the verdicts into one machine-readable [`Admission`] report:
//!
//! 1. **Progress / starvation-freedom** ([`check_progress`], property
//!    name [`PROP_PROGRESS`]). The priority machinery of a scheme is
//!    abstracted into a [`PriorityAutomaton`]: a pure transition function
//!    over the per-router arbiter state `(native_high, occupied native
//!    VCs, occupied foreign VCs)` plus a pure per-stage priority function.
//!    VC occupancy is environment-controlled (the abstraction lets it jump
//!    to any value each cycle — a demonic adversary), so the explored
//!    transition system over-approximates every reachable arbiter
//!    trajectory. The property checked is **non-lockout**: from every
//!    reachable state, the native-favoring set `W` (states whose priority
//!    function grants a native request at least tie priority at a
//!    contested point — a tie is won in bounded time by the rotating
//!    arbiter) must remain reachable. A reachable state from which `W` is
//!    unreachable is a *lasso*: the adversary can hold the arbiter outside
//!    `W` forever and defer a native request indefinitely. The concrete
//!    stem + cycle is emitted as a replayable witness trace
//!    ([`AdmitWitness::Lasso`]); re-applying [`PriorityAutomaton::step`]
//!    over it reproduces the starving trajectory.
//!
//!    Contested points are the native class's *persistent* arbitration
//!    points: VC allocation on regional and escape output VCs, and both
//!    switch-allocation stages. Global VCs are deliberately excluded —
//!    foreign traffic owns them by construction (§IV.A), a native
//!    requests one only opportunistically (VC selection re-runs every
//!    cycle and always holds the escape fallback), so losing there cannot
//!    pin a native request. Symmetrically, foreign progress is guaranteed
//!    by the always-foreign-high global VCs and is not re-checked here:
//!    the issue property is native-class starvation.
//!
//!    Region-oblivious aging schemes ([`Aging::OldestFirst`],
//!    [`Aging::Batched`]) are admitted by the aging argument instead of
//!    state exploration: a waiting head flit's age (or batch seniority)
//!    grows without bound while the set of older competitors only drains,
//!    so its priority eventually dominates; the derived wait bound adds
//!    the backlog-drain term (and the batch window for batched ranks).
//!
//! 2. **Region non-interference** ([`check_non_interference`], property
//!    name [`PROP_NON_INTERFERENCE`]). A taint/reachability pass over the
//!    same `(router, port, VC-class)` channel graph the CDG verifier
//!    builds: for every application and every intra-application flow, the
//!    minimal-route channel graph is walked ([`RoutingAlgorithm::next_hops`],
//!    so the walk is exact on all four topology kinds, including wrapping
//!    paths on torus/ring that legitimately transit foreign regions). At
//!    each hop the flit may occupy the VC class its allocator *steers* it
//!    into: the scheme's tag preference for the allocating router's
//!    native/foreign view, plus the escape class. The proven property:
//!    a flit that is foreign at both the allocating router and the
//!    downstream router is never steered into a native-reserved
//!    (regional-tagged) VC — regional VCs strictly interior to a region
//!    stay free of foreign taint. Two scope notes, both deliberate:
//!    the *boundary handoff* (a flit still native at the allocating
//!    router occupying its first VC inside the neighbor region) is
//!    exempt — it is one hop deep by construction and drains under the
//!    always-foreign-high global VCs downstream; and *escape lanes* are
//!    class-shared by design (they are not native-reserved — their
//!    bounded occupancy is exactly the escape-CDG acyclicity theorem the
//!    [`crate::verify`] pipeline proves). Saturation spillover (the VA
//!    fallback that hands any free adaptive VC to a flit whose preferred
//!    tag is exhausted) is likewise outside the steering relation; the
//!    starvation observer ([`crate::oracle`]) bounds its effect
//!    dynamically.
//!
//! 3. **Bandwidth feasibility** (property name [`PROP_FEASIBILITY`]) is
//!    computed in `crates/experiments` from `crates/model`'s per-flow
//!    link-load maps — the model crate depends on this one, so the check
//!    cannot live here. The experiments driver appends it to the same
//!    [`Admission`] report: offered native load above raw link capacity
//!    rejects (the over-subscribed-region negative), load above the
//!    calibrated efficiency but below raw capacity admits with a warning.
//!
//! Timing note: this crate is subject to the wall-clock determinism lint,
//! so [`PropertyReport::micros`] is left 0 here and stamped by the
//! experiments driver, which is exempt.

use crate::arbitration::ArbStage;
use crate::config::SimConfig;
use crate::ids::{AppId, Coord, NodeId, Port, APP_NONE, NUM_PORTS};
use crate::region::RegionMap;
use crate::routing::RoutingAlgorithm;
use crate::topology;
use crate::vc::{VcClass, VcTag};
use crate::verify::{ChannelClass, ChannelId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Property name: progress / native starvation-freedom.
pub const PROP_PROGRESS: &str = "progress";
/// Property name: region non-interference (VC reservation taint).
pub const PROP_NON_INTERFERENCE: &str = "non-interference";
/// Property name: analytical bandwidth feasibility (experiments layer).
pub const PROP_FEASIBILITY: &str = "bandwidth-feasibility";

/// Occupancy cap per class in the explored arbiter state space. Real
/// occupancy is bounded by `NUM_PORTS × vcs_per_port`; configs below the
/// cap are explored exactly, larger ones are clamped (the DPA step
/// depends only on the occupancy *ratio*, which the clamped grid still
/// covers densely enough to realize every threshold crossing).
const MAX_OCC: u32 = 24;

/// Verdict of one property check (or of a whole admission report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdmitVerdict {
    /// Property proven.
    Admit,
    /// Property holds with a flagged risk (feasibility above the
    /// calibrated knee): admitted-with-warning, not rejected.
    Warn,
    /// Property refuted; the report carries a concrete witness.
    Reject,
}

impl AdmitVerdict {
    /// Stable lowercase label (report JSON).
    pub fn label(self) -> &'static str {
        match self {
            AdmitVerdict::Admit => "admit",
            AdmitVerdict::Warn => "warn",
            AdmitVerdict::Reject => "reject",
        }
    }
}

/// How a scheme's priorities age over a request's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aging {
    /// Priorities are a pure function of the arbiter state (RAIR's DPA
    /// bit, or constant): progress must come from the state machine.
    None,
    /// Older requests strictly dominate (RO_Age): progress by aging.
    OldestFirst,
    /// Seniority in windows of `window` cycles (RO_Rank batches): aging
    /// with a per-window plateau.
    Batched {
        /// Batch window in cycles.
        window: u64,
    },
}

/// Pure DPA-bit transition: `(native_high, occupied native VCs, occupied
/// foreign VCs) → native_high'`.
pub type StepFn = Box<dyn Fn(bool, u32, u32) -> bool + Send + Sync>;

/// Pure stage priority: `(stage, native_high, contested VC class,
/// is_native) → priority` — the state-dependent core of
/// `PriorityPolicy::priority` with the router replaced by the abstract
/// arbiter state.
pub type PriorityFn = Box<dyn Fn(ArbStage, bool, Option<VcClass>, bool) -> u64 + Send + Sync>;

/// A scheme's priority machinery as a finite transition system: the
/// abstraction [`check_progress`] explores. Built by
/// `rair::Scheme::automaton()` for the shipped schemes, or by the
/// constructors here for synthetic/test machines.
pub struct PriorityAutomaton {
    /// Scheme label (also the cache-key component — labels are unique
    /// per scheme semantics).
    pub name: String,
    /// DPA-bit transition function.
    pub step: StepFn,
    /// Per-stage priority function over the abstract state.
    pub priority: PriorityFn,
    /// Adaptive-VC tag the VA stage steers a *native* flit into.
    pub native_pref: Option<VcTag>,
    /// Adaptive-VC tag the VA stage steers a *foreign* flit into.
    pub foreign_pref: Option<VcTag>,
    /// Aging behavior (decides which progress argument applies).
    pub aging: Aging,
    /// Reset value of the DPA bit.
    pub initial_native_high: bool,
}

impl PriorityAutomaton {
    /// Pure round-robin: every request ties, no VC steering (RO_RR).
    pub fn round_robin(name: &str) -> Self {
        PriorityAutomaton {
            name: name.to_string(),
            step: Box::new(|nh, _, _| nh),
            priority: Box::new(|_, _, _, _| 0),
            native_pref: None,
            foreign_pref: None,
            aging: Aging::None,
            initial_native_high: false,
        }
    }

    /// Region-oblivious aging: ties at equal age, older wins (RO_Age /
    /// RO_Rank depending on `window`).
    pub fn aging(name: &str, window: Option<u64>) -> Self {
        PriorityAutomaton {
            aging: window.map_or(Aging::OldestFirst, |w| Aging::Batched { window: w }),
            ..Self::round_robin(name)
        }
    }

    /// A frozen DPA bit with RAIR's VC steering: `native_high = true`
    /// models RAIR_NativeH, `false` models the RAIR_ForeignH priority
    /// inversion (the pinned negative).
    pub fn fixed_bit(name: &str, native_high: bool) -> Self {
        PriorityAutomaton {
            name: name.to_string(),
            step: Box::new(move |_, _, _| native_high),
            priority: Box::new(|_, nh, _, is_native| if is_native == nh { 2 } else { 1 }),
            native_pref: Some(VcTag::Regional),
            foreign_pref: Some(VcTag::Global),
            aging: Aging::None,
            initial_native_high: native_high,
        }
    }
}

/// One state of the explored arbiter transition system, annotated with
/// the priorities both classes hold at the contested point — a lasso
/// witness is a sequence of these, replayable through
/// [`PriorityAutomaton::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LassoStep {
    /// DPA bit in this state.
    pub native_high: bool,
    /// Occupied native-owned VCs (environment-chosen).
    pub occ_native: u32,
    /// Occupied foreign-owned VCs (environment-chosen).
    pub occ_foreign: u32,
    /// Priority a native request holds at the contested point.
    pub native_prio: u64,
    /// Priority a foreign request holds at the contested point.
    pub foreign_prio: u64,
}

impl fmt::Display for LassoStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(nh={} occ={}/{} prio {}<{})",
            u8::from(self.native_high),
            self.occ_native,
            self.occ_foreign,
            self.native_prio,
            self.foreign_prio
        )
    }
}

/// Concrete evidence attached to a non-admit verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitWitness {
    /// Starvation lasso: after `stem`, the arbiter can cycle through
    /// `cycle` forever with the native request losing every round.
    Lasso {
        /// Contested arbitration point (e.g. `"SA_in"`).
        point: &'static str,
        /// Reachability prefix from the reset state.
        stem: Vec<LassoStep>,
        /// The repeating suffix (first state recurs after the last).
        cycle: Vec<LassoStep>,
    },
    /// Foreign taint steered into a native-reserved VC: the channel path
    /// of a concrete flow from `src` to `dst`, ending at the offending
    /// regional channel (its buffer sits at the downstream router).
    Taint {
        /// Application owning the flow.
        app: AppId,
        /// Flow source node.
        src: NodeId,
        /// Flow destination node.
        dst: NodeId,
        /// Output channels along the flow; the last one is the violation.
        path: Vec<ChannelId>,
    },
    /// Offered native load exceeds link capacity at a bottleneck.
    Overload {
        /// Bottleneck link label (`"r12->r13"` style).
        link: String,
        /// Offered load in flits/cycle.
        offered: f64,
        /// Capacity threshold it exceeds (raw or calibrated).
        capacity: f64,
    },
}

impl fmt::Display for AdmitWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitWitness::Lasso { point, stem, cycle } => {
                write!(f, "lasso at {point}: stem[")?;
                for (i, s) in stem.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "] cycle[")?;
                for (i, s) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "]")
            }
            AdmitWitness::Taint {
                app,
                src,
                dst,
                path,
            } => {
                write!(f, "app {app} flow {src}->{dst} taints ")?;
                for (i, c) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            AdmitWitness::Overload {
                link,
                offered,
                capacity,
            } => {
                write!(
                    f,
                    "link {link}: offered {offered:.3} > capacity {capacity:.3} flits/cycle"
                )
            }
        }
    }
}

/// Verdict of one property check, with diagnostics.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// Property name ([`PROP_PROGRESS`] / [`PROP_NON_INTERFERENCE`] /
    /// [`PROP_FEASIBILITY`]).
    pub property: &'static str,
    /// The verdict.
    pub verdict: AdmitVerdict,
    /// Human-readable explanation of what was proven or refuted.
    pub detail: String,
    /// Concrete evidence for non-admit verdicts.
    pub witness: Option<AdmitWitness>,
    /// Analysis cost: states explored / routers visited / links checked.
    pub states: u64,
    /// Analysis cost in wall-clock microseconds — stamped by the
    /// experiments driver (wall-clock reads are linted out of this crate).
    pub micros: u64,
    /// For admitted progress checks: the statically derived bound on
    /// consecutive arbitration losses of a native head flit, in cycles
    /// (the starvation observer's differential budget).
    pub wait_bound: Option<u64>,
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.property, self.verdict.label())?;
        if let Some(w) = &self.witness {
            write!(f, " [{w}]")?;
        }
        write!(f, " — {}", self.detail)
    }
}

/// The unified admission report for one configuration.
#[derive(Debug, Clone)]
pub struct Admission {
    /// Scheme label the automaton was built from.
    pub scheme: String,
    /// One report per property family, in pipeline order.
    pub properties: Vec<PropertyReport>,
}

impl Admission {
    /// Aggregate verdict: the worst of the per-property verdicts.
    pub fn verdict(&self) -> AdmitVerdict {
        self.properties
            .iter()
            .map(|p| p.verdict)
            .max()
            .unwrap_or(AdmitVerdict::Admit)
    }

    /// Is the config safe to simulate (admit or admit-with-warning)?
    pub fn is_admitted(&self) -> bool {
        self.verdict() != AdmitVerdict::Reject
    }

    /// The first rejecting property report, if any.
    pub fn rejection(&self) -> Option<&PropertyReport> {
        self.properties
            .iter()
            .find(|p| p.verdict == AdmitVerdict::Reject)
    }

    /// The statically derived starvation wait bound (minimum over the
    /// admitted progress reports), if one was proven.
    pub fn wait_bound(&self) -> Option<u64> {
        self.properties.iter().filter_map(|p| p.wait_bound).min()
    }
}

impl fmt::Display for Admission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.scheme, self.verdict().label())?;
        for p in &self.properties {
            write!(f, "\n  {p}")?;
        }
        Ok(())
    }
}

/// The native class's persistent arbitration points (see module docs for
/// why global VCs are excluded).
fn contested_points(cfg: &SimConfig) -> Vec<(&'static str, ArbStage, Option<VcClass>)> {
    let mut pts: Vec<(&'static str, ArbStage, Option<VcClass>)> = Vec::new();
    if cfg.regional_vcs > 0 {
        pts.push((
            "VA_out/regional",
            ArbStage::VaOut,
            Some(VcClass::Adaptive {
                tag: VcTag::Regional,
            }),
        ));
    }
    pts.push((
        "VA_out/escape",
        ArbStage::VaOut,
        Some(VcClass::Escape { class: 0 }),
    ));
    pts.push(("SA_in", ArbStage::SaIn, None));
    pts.push(("SA_out", ArbStage::SaOut, None));
    pts
}

/// Occupancy cap per class for the explored state space.
fn occ_cap(cfg: &SimConfig) -> u32 {
    let slots = (NUM_PORTS * cfg.vcs_per_port()) as u32;
    slots.min(MAX_OCC)
}

/// The statically derived bound on consecutive arbitration losses of a
/// native head flit, for an admitted config: every competitor ahead of it
/// (one per arbiter slot, rotating fairness) plus a full drain of both
/// occupancy classes, each holding the switch for up to one packet's
/// serialization plus credit turnaround (the ×4 slack term), plus the
/// aging plateau for batched ranks.
fn wait_bound(cfg: &SimConfig, aging: Aging) -> u64 {
    let slots = (NUM_PORTS * cfg.vcs_per_port()) as u64;
    let cap = u64::from(occ_cap(cfg));
    let pkt = u64::from(cfg.long_flits.max(cfg.short_flits));
    let base = (slots + 2 * cap) * pkt * 4;
    match aging {
        Aging::Batched { window } => base + 2 * window,
        Aging::None | Aging::OldestFirst => base,
    }
}

/// Annotate one abstract state with both classes' priorities at a point.
fn lasso_step(
    auto: &PriorityAutomaton,
    stage: ArbStage,
    vc: Option<VcClass>,
    nh: bool,
    n: u32,
    f: u32,
) -> LassoStep {
    LassoStep {
        native_high: nh,
        occ_native: n,
        occ_foreign: f,
        native_prio: (auto.priority)(stage, nh, vc, true),
        foreign_prio: (auto.priority)(stage, nh, vc, false),
    }
}

/// Prove or refute native starvation-freedom of `auto` on `cfg` by
/// bounded exhaustive exploration (see module docs for the property).
pub fn check_progress(cfg: &SimConfig, auto: &PriorityAutomaton) -> PropertyReport {
    let bound = wait_bound(cfg, auto.aging);
    if auto.aging != Aging::None {
        let kind = match auto.aging {
            Aging::OldestFirst => "oldest-first",
            Aging::Batched { .. } => "batched-seniority",
            Aging::None => "",
        };
        return PropertyReport {
            property: PROP_PROGRESS,
            verdict: AdmitVerdict::Admit,
            detail: format!(
                "{kind} aging: a waiting native head flit's seniority grows without bound \
                 while older competitors only drain, so it wins within {bound} cycles"
            ),
            witness: None,
            states: 0,
            micros: 0,
            wait_bound: Some(bound),
        };
    }

    let cap = occ_cap(cfg);
    let nn = cap as usize + 1;
    let total = 2 * nn * nn;
    let idx = |nh: bool, n: u32, f: u32| (usize::from(nh) * nn + n as usize) * nn + f as usize;
    let un_idx = |s: usize| (s / (nn * nn) == 1, ((s / nn) % nn) as u32, (s % nn) as u32);

    // Forward reachability from the reset state, with BFS parents for the
    // witness stem. Successors of (nh, n, f) are (step(nh, n, f), n', f')
    // for every environment-chosen occupancy (n', f'), so expansion is
    // memoized per successor DPA bit.
    let mut reach = vec![false; total];
    let mut parent = vec![usize::MAX; total];
    let mut expanded_to = [false; 2];
    let s0 = idx(auto.initial_native_high, 0, 0);
    reach[s0] = true;
    let mut queue = VecDeque::from([s0]);
    let mut states = 0u64;
    while let Some(s) = queue.pop_front() {
        states += 1;
        let (nh, n, f) = un_idx(s);
        let b = (auto.step)(nh, n, f);
        if expanded_to[usize::from(b)] {
            continue;
        }
        expanded_to[usize::from(b)] = true;
        for n2 in 0..=cap {
            for f2 in 0..=cap {
                let t = idx(b, n2, f2);
                if !reach[t] {
                    reach[t] = true;
                    parent[t] = s;
                    queue.push_back(t);
                }
            }
        }
    }

    // good[b]: from DPA bit b, the native-favoring set W remains
    // reachable. Fixpoint of W ∪ pre(good) on the 2-element bit domain.
    for (point, stage, vc) in contested_points(cfg) {
        let in_w = |nh: bool| {
            (auto.priority)(stage, nh, vc, true) >= (auto.priority)(stage, nh, vc, false)
        };
        let mut good = [in_w(false), in_w(true)];
        loop {
            let mut changed = false;
            for bb in [false, true] {
                if good[usize::from(bb)] {
                    continue;
                }
                let escapes =
                    (0..=cap).any(|n| (0..=cap).any(|f| good[usize::from((auto.step)(bb, n, f))]));
                if escapes {
                    good[usize::from(bb)] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let starved = (0..total).find(|&s| reach[s] && !good[usize::from(un_idx(s).0)]);
        let Some(starved) = starved else { continue };

        // Witness stem: BFS parent chain from the reset state.
        let mut stem_states = vec![starved];
        let mut cur = starved;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            stem_states.push(cur);
        }
        stem_states.reverse();
        let stem: Vec<LassoStep> = stem_states
            .iter()
            .map(|&s| {
                let (nh, n, f) = un_idx(s);
                lasso_step(auto, stage, vc, nh, n, f)
            })
            .collect();

        // Witness cycle: from the starved state, let the adversary hold a
        // hostile occupancy (one waiting native, a full foreign load).
        // Every successor of a non-good state is non-good, and with the
        // occupancy fixed the DPA bit must repeat within two steps.
        let hostile = (1.min(cap), cap.max(1).min(cap));
        let (mut nh, mut n, mut f) = un_idx(starved);
        let mut walk: Vec<(bool, u32, u32)> = Vec::new();
        let cycle_start = loop {
            if let Some(pos) = walk
                .iter()
                .position(|&(wnh, wn, wf)| (wnh, wn, wf) == (nh, n, f))
            {
                break pos;
            }
            walk.push((nh, n, f));
            nh = (auto.step)(nh, n, f);
            (n, f) = hostile;
        };
        let cycle: Vec<LassoStep> = walk[cycle_start..]
            .iter()
            .map(|&(wnh, wn, wf)| lasso_step(auto, stage, vc, wnh, wn, wf))
            .collect();
        let first = cycle.first().copied();
        return PropertyReport {
            property: PROP_PROGRESS,
            verdict: AdmitVerdict::Reject,
            detail: format!(
                "native request starves at {point}: reachable arbiter state \
                 {} can never re-enter the native-favoring set W \
                 (priority {} < {} on every future cycle)",
                first.map(|s| s.to_string()).unwrap_or_default(),
                first.map_or(0, |s| s.native_prio),
                first.map_or(0, |s| s.foreign_prio),
            ),
            witness: Some(AdmitWitness::Lasso { point, stem, cycle }),
            states,
            micros: 0,
            wait_bound: None,
        };
    }

    let points = contested_points(cfg).len();
    PropertyReport {
        property: PROP_PROGRESS,
        verdict: AdmitVerdict::Admit,
        detail: format!(
            "all {states} reachable arbiter states re-enter the native-favoring set W \
             at every contested point ({points} points, occupancy cap {cap}); \
             native head-flit wait bounded by {bound} cycles"
        ),
        witness: None,
        states,
        micros: 0,
        wait_bound: Some(bound),
    }
}

/// Is `app` treated as native at a router owned by `owner`? (`APP_NONE`
/// tiles treat all traffic as native.)
fn native_at(owner: AppId, app: AppId) -> bool {
    owner == app || owner == APP_NONE
}

/// Is `p` a minimal linked hop from `cur` toward `d`? (Defensive guard —
/// non-minimal routing functions are the CDG verifier's finding, not
/// ours; skipping them keeps the taint walk terminating regardless.)
fn minimal_hop(cfg: &SimConfig, cur: Coord, d: Coord, p: Port) -> bool {
    (1..=4).contains(&p)
        && topology::has_link(cfg, cur, p)
        && topology::distance(cfg, topology::step(cfg, cur, p), d) + 1
            == topology::distance(cfg, cur, d)
}

/// Prove or refute region non-interference of the scheme's VC steering on
/// `cfg` × `region` × `routing` (see module docs for the taint domain and
/// the two deliberate scope exemptions).
pub fn check_non_interference(
    cfg: &SimConfig,
    region: &RegionMap,
    routing: &dyn RoutingAlgorithm,
    auto: &PriorityAutomaton,
) -> PropertyReport {
    let admit = |detail: String, states: u64| PropertyReport {
        property: PROP_NON_INTERFERENCE,
        verdict: AdmitVerdict::Admit,
        detail,
        witness: None,
        states,
        micros: 0,
        wait_bound: None,
    };
    if region.num_apps() <= 1 {
        return admit("single region: no foreign class exists".to_string(), 0);
    }
    if cfg.regional_vcs == 0 || auto.foreign_pref.is_none() {
        return admit(
            "scheme reserves no regional VCs: nothing to protect".to_string(),
            0,
        );
    }

    let n = cfg.num_routers();
    let conc = cfg.concentration();
    let owner = |r: usize| region.app_of((r * conc) as NodeId);
    let mut visited_total = 0u64;

    for app in 0..region.num_apps() as AppId {
        let nodes = region.nodes_of(app);
        let mut app_routers: Vec<usize> = nodes.iter().map(|&nd| cfg.router_of(nd)).collect();
        app_routers.dedup();
        for &rd in &app_routers {
            let d = cfg.router_coord(rd);
            // Multi-source BFS over the minimal-route channel graph from
            // every other router of the app toward rd, with parents for
            // the witness path.
            let mut seen = vec![false; n];
            let mut parent: Vec<Option<(usize, Port)>> = vec![None; n];
            let mut queue: VecDeque<usize> = VecDeque::new();
            for &r in app_routers.iter().filter(|&&r| r != rd) {
                if !seen[r] {
                    seen[r] = true;
                    queue.push_back(r);
                }
            }
            while let Some(cur) = queue.pop_front() {
                visited_total += 1;
                let c = cfg.router_coord(cur);
                let hops = routing.next_hops(cfg, c, d);
                let cur_native = native_at(owner(cur), app);
                let pref = if cur_native {
                    auto.native_pref
                } else {
                    auto.foreign_pref
                };
                let mut ports: Vec<(Port, bool)> =
                    hops.adaptive.iter().flatten().map(|&p| (p, true)).collect();
                ports.push((hops.escape, false));
                for (p, adaptive) in ports {
                    if !minimal_hop(cfg, c, d, p) {
                        continue;
                    }
                    let y = cfg.router_at(topology::step(cfg, c, p));
                    if adaptive
                        && pref == Some(VcTag::Regional)
                        && !cur_native
                        && !native_at(owner(y), app)
                    {
                        // Foreign at both the allocating and the holding
                        // router, steered into a regional VC: violation.
                        let mut chain = vec![(cur, p)];
                        let mut x = cur;
                        while let Some((px, pp)) = parent[x] {
                            chain.push((px, pp));
                            x = px;
                        }
                        chain.reverse();
                        let path: Vec<ChannelId> = chain
                            .iter()
                            .map(|&(r, pp)| ChannelId {
                                router: r as NodeId,
                                port: pp,
                                class: ChannelClass::Adaptive,
                                lane: 0,
                            })
                            .collect();
                        let src = nodes
                            .iter()
                            .copied()
                            .find(|&nd| cfg.router_of(nd) == x)
                            .unwrap_or(nodes.first().copied().unwrap_or(0));
                        let dst = nodes
                            .iter()
                            .copied()
                            .find(|&nd| cfg.router_of(nd) == rd)
                            .unwrap_or(0);
                        return PropertyReport {
                            property: PROP_NON_INTERFERENCE,
                            verdict: AdmitVerdict::Reject,
                            detail: format!(
                                "foreign flit of app {app} (flow {src}->{dst}) is steered \
                                 into a native-reserved regional VC at router {y} \
                                 (owner app {}) — interior channel, not a boundary handoff",
                                owner(y)
                            ),
                            witness: Some(AdmitWitness::Taint {
                                app,
                                src,
                                dst,
                                path,
                            }),
                            states: visited_total,
                            micros: 0,
                            wait_bound: None,
                        };
                    }
                    if y != rd && !seen[y] {
                        seen[y] = true;
                        parent[y] = Some((cur, p));
                        queue.push_back(y);
                    }
                }
            }
        }
    }

    admit(
        format!(
            "no foreign-allocated flow reaches a regional VC on an interior channel \
             ({} apps, {visited_total} router visits; escape lanes are class-shared \
             by design — bounded by the escape-CDG acyclicity proof)",
            region.num_apps()
        ),
        visited_total,
    )
}

/// Run the full static admission pipeline (progress + non-interference;
/// the experiments driver appends bandwidth feasibility).
pub fn admit_network(
    cfg: &SimConfig,
    region: &RegionMap,
    routing: &dyn RoutingAlgorithm,
    auto: &PriorityAutomaton,
) -> Admission {
    Admission {
        scheme: auto.name.clone(),
        properties: vec![
            check_progress(cfg, auto),
            check_non_interference(cfg, region, routing, auto),
        ],
    }
}

/// Process-wide memoized admission, keyed like `verify_network_cached`
/// (config digest + routing name + region map) plus the automaton's
/// scheme label. The sweep runner and the DSE service call this as the
/// pre-simulation gate; repeated cells are free.
pub fn admit_network_cached(
    cfg: &SimConfig,
    region: &RegionMap,
    routing: &dyn RoutingAlgorithm,
    auto: &PriorityAutomaton,
) -> Admission {
    static CACHE: Mutex<std::collections::BTreeMap<u64, Admission>> =
        Mutex::new(std::collections::BTreeMap::new());
    let mut d = metrics::Digest::new();
    cfg.digest_into(&mut d);
    for b in routing.name().bytes() {
        d.write_u64(u64::from(b));
    }
    for b in auto.name.bytes() {
        d.write_u64(u64::from(b));
    }
    for node in 0..region.len() {
        d.write_u64(u64::from(region.app_of(node as NodeId)));
    }
    let key = d.finish();
    let Ok(mut cache) = CACHE.lock() else {
        return admit_network(cfg, region, routing, auto);
    };
    if let Some(hit) = cache.get(&key) {
        return hit.clone();
    }
    let adm = admit_network(cfg, region, routing, auto);
    cache.insert(key, adm.clone());
    adm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::XyRouting;

    /// Dynamic-DPA-like automaton (the shipped RAIR semantics, inlined so
    /// this crate's tests need no rair dependency): favor the minority
    /// class with a ±delta hysteresis band.
    fn dynamic_dpa(name: &str) -> PriorityAutomaton {
        PriorityAutomaton {
            name: name.to_string(),
            step: Box::new(|prev, n, f| {
                if n == 0 && f == 0 {
                    prev
                } else if n == 0 {
                    true
                } else {
                    let r = f64::from(f) / f64::from(n);
                    if r > 1.2 {
                        true
                    } else if r < 0.8 {
                        false
                    } else {
                        prev
                    }
                }
            }),
            priority: Box::new(|_, nh, _, is_native| if is_native == nh { 2 } else { 1 }),
            native_pref: Some(VcTag::Regional),
            foreign_pref: Some(VcTag::Global),
            aging: Aging::None,
            initial_native_high: false,
        }
    }

    #[test]
    fn dynamic_dpa_admits_progress() {
        let cfg = SimConfig::table1();
        let rep = check_progress(&cfg, &dynamic_dpa("dyn"));
        assert_eq!(rep.verdict, AdmitVerdict::Admit);
        assert!(rep.wait_bound.is_some());
        assert!(rep.states > 0);
    }

    #[test]
    fn round_robin_and_aging_admit_progress() {
        let cfg = SimConfig::table1();
        for auto in [
            PriorityAutomaton::round_robin("rr"),
            PriorityAutomaton::aging("age", None),
            PriorityAutomaton::aging("rank", Some(8000)),
            PriorityAutomaton::fixed_bit("native-high", true),
        ] {
            let rep = check_progress(&cfg, &auto);
            assert_eq!(rep.verdict, AdmitVerdict::Admit, "{}", auto.name);
        }
        // The batched bound includes the window plateau.
        let b_rank = check_progress(&cfg, &PriorityAutomaton::aging("rank", Some(8000)))
            .wait_bound
            .unwrap();
        let b_age = check_progress(&cfg, &PriorityAutomaton::aging("age", None))
            .wait_bound
            .unwrap();
        assert!(b_rank > b_age);
    }

    #[test]
    fn priority_inversion_rejected_with_replayable_lasso() {
        let cfg = SimConfig::table1();
        let auto = PriorityAutomaton::fixed_bit("foreign-high", false);
        let rep = check_progress(&cfg, &auto);
        assert_eq!(rep.property, PROP_PROGRESS);
        assert_eq!(rep.verdict, AdmitVerdict::Reject);
        let Some(AdmitWitness::Lasso { stem, cycle, .. }) = rep.witness else {
            panic!("expected lasso witness");
        };
        assert!(!stem.is_empty() && !cycle.is_empty());
        // Replay: every cycle step defers the native request, and the step
        // function maps each cycle state onto the next one's DPA bit.
        for (i, s) in cycle.iter().enumerate() {
            assert!(
                s.native_prio < s.foreign_prio,
                "native must lose in the cycle"
            );
            let next = cycle[(i + 1) % cycle.len()];
            assert_eq!(
                (auto.step)(s.native_high, s.occ_native, s.occ_foreign),
                next.native_high,
                "cycle must be closed under the step function"
            );
        }
    }

    #[test]
    fn interference_admits_shipped_steering_on_l_shaped_region() {
        // An L-shaped app 0 wrapped around app 1's corner square: minimal
        // intra-app-0 routes must transit app 1's routers.
        let mut cfg = SimConfig::table1();
        cfg.width = 4;
        cfg.height = 4;
        let region = RegionMap::from_fn(&cfg, 2, |c| u8::from(c.x >= 2 && c.y >= 2));
        let auto = dynamic_dpa("dyn");
        let rep = check_non_interference(&cfg, &region, &XyRouting, &auto);
        assert_eq!(rep.verdict, AdmitVerdict::Admit, "{}", rep.detail);
    }

    #[test]
    fn inverted_steering_rejected_with_taint_path() {
        let mut cfg = SimConfig::table1();
        cfg.width = 4;
        cfg.height = 4;
        let region = RegionMap::from_fn(&cfg, 2, |c| u8::from(c.x >= 2 && c.y >= 2));
        let mut auto = dynamic_dpa("inverted");
        auto.foreign_pref = Some(VcTag::Regional);
        let rep = check_non_interference(&cfg, &region, &XyRouting, &auto);
        assert_eq!(rep.property, PROP_NON_INTERFERENCE);
        assert_eq!(rep.verdict, AdmitVerdict::Reject);
        let Some(AdmitWitness::Taint { path, .. }) = rep.witness else {
            panic!("expected taint witness");
        };
        assert!(!path.is_empty());
    }

    #[test]
    fn single_region_is_vacuously_clean() {
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let rep = check_non_interference(&cfg, &region, &XyRouting, &dynamic_dpa("dyn"));
        assert_eq!(rep.verdict, AdmitVerdict::Admit);
        assert_eq!(rep.states, 0);
    }

    #[test]
    fn cached_admission_is_identical_and_reports_aggregate() {
        let cfg = SimConfig::table1();
        let region = RegionMap::quadrants(&cfg);
        let auto = dynamic_dpa("dyn");
        let a = admit_network_cached(&cfg, &region, &XyRouting, &auto);
        let b = admit_network_cached(&cfg, &region, &XyRouting, &auto);
        assert!(a.is_admitted());
        assert_eq!(a.verdict(), AdmitVerdict::Admit);
        assert_eq!(a.properties.len(), b.properties.len());
        assert_eq!(format!("{a}"), format!("{b}"));
        assert!(a.rejection().is_none());
        assert!(a.wait_bound().is_some());
    }

    #[test]
    fn rejected_admission_surfaces_the_property() {
        let cfg = SimConfig::table1();
        let region = RegionMap::quadrants(&cfg);
        let auto = PriorityAutomaton::fixed_bit("foreign-high", false);
        let adm = admit_network(&cfg, &region, &XyRouting, &auto);
        assert!(!adm.is_admitted());
        assert_eq!(adm.rejection().map(|p| p.property), Some(PROP_PROGRESS));
    }
}
