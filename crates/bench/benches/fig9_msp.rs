//! Bench for Figure 9 (impact of multi-stage prioritization): regenerates
//! the series, then times the two-application scenario under each scheme.

use bench::{bench_config, TIMED_CYCLES};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::fig9;
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::two_app;

fn regen_and_time(c: &mut Criterion) {
    let ec = bench_config();
    let result = fig9::run(&ec);
    eprintln!(
        "{}",
        fig9::table("Fig.9 (bench regeneration, ultra-quick)", &result).render()
    );

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for (label, scheme) in [
        ("ro_rr", Scheme::RoRr),
        ("rair_va", Scheme::rair_va_only()),
        ("rair_va_sa", Scheme::rair()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::table1();
                let (region, scenario) = two_app(&cfg, 1.0, 0.035, 0.33);
                let mut net = build_network(
                    &cfg,
                    &region,
                    &scheme,
                    Routing::Local,
                    Box::new(scenario),
                    1,
                );
                net.run(TIMED_CYCLES);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, regen_and_time);
criterion_main!(benches);
