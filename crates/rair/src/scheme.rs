//! Named interference-reduction schemes and routing choices, matching the
//! configurations compared in the paper's evaluation (§V).

use crate::dpa::DpaMode;
use crate::msp::MspConfig;
use crate::policy::RairPolicy;
use noc_sim::admit::{Aging, PriorityAutomaton};
use noc_sim::arbitration::{
    AgeBased, PriorityPolicy, RoundRobin, StcRank, StcRankOnline, DEFAULT_BATCH_WINDOW,
    DEFAULT_RANK_INTERVAL,
};
use noc_sim::routing::{DbarAdaptive, DuatoLocalAdaptive, RoutingAlgorithm, XyRouting};
use noc_sim::vc::VcTag;
use serde::{Deserialize, Serialize};

/// An interference-reduction scheme (the arbitration-priority dimension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Region-oblivious round-robin (`RO_RR`).
    RoRr,
    /// Region-oblivious oldest-first (`RO_Age`).
    RoAge,
    /// Optimized STC (`RO_Rank`): oracle per-application intensities.
    RoRank {
        /// Configured network intensity per application (the oracle input;
        /// lower intensity ⇒ higher rank).
        intensities: Vec<f64>,
        /// Batching window in cycles.
        batch_window: u64,
    },
    /// `RO_Rank` with online intensity estimation instead of the oracle —
    /// an extension beyond the paper (the paper's STC is assumed optimal).
    RoRankOnline {
        num_apps: usize,
        batch_window: u64,
        rank_interval: u64,
    },
    /// The proposed technique (`RA_RAIR`) or one of its ablations.
    Rair { msp: MspConfig, dpa: DpaMode },
}

impl Scheme {
    /// `RO_Rank` with the default batching window.
    pub fn ro_rank(intensities: Vec<f64>) -> Self {
        Scheme::RoRank {
            intensities,
            batch_window: DEFAULT_BATCH_WINDOW,
        }
    }

    /// `RO_Rank` with default online-estimation parameters.
    pub fn ro_rank_online(num_apps: usize) -> Self {
        Scheme::RoRankOnline {
            num_apps,
            batch_window: DEFAULT_BATCH_WINDOW,
            rank_interval: DEFAULT_RANK_INTERVAL,
        }
    }

    /// Full RAIR (VA+SA MSP, dynamic DPA).
    pub fn rair() -> Self {
        Scheme::Rair {
            msp: MspConfig::va_and_sa(),
            dpa: DpaMode::dynamic(),
        }
    }

    /// `RAIR_VA` ablation (MSP only at the VA stage).
    pub fn rair_va_only() -> Self {
        Scheme::Rair {
            msp: MspConfig::va_only(),
            dpa: DpaMode::dynamic(),
        }
    }

    /// `RAIR_NativeH` ablation.
    pub fn rair_native_high() -> Self {
        Scheme::Rair {
            msp: MspConfig::va_and_sa(),
            dpa: DpaMode::FixedNativeHigh,
        }
    }

    /// `RAIR_ForeignH` ablation.
    pub fn rair_foreign_high() -> Self {
        Scheme::Rair {
            msp: MspConfig::va_and_sa(),
            dpa: DpaMode::FixedForeignHigh,
        }
    }

    /// Instantiate the priority policy.
    pub fn build(&self) -> Box<dyn PriorityPolicy> {
        match self {
            Scheme::RoRr => Box::new(RoundRobin),
            Scheme::RoAge => Box::new(AgeBased),
            Scheme::RoRank {
                intensities,
                batch_window,
            } => Box::new(StcRank::from_intensities(intensities, *batch_window)),
            Scheme::RoRankOnline {
                num_apps,
                batch_window,
                rank_interval,
            } => Box::new(StcRankOnline::new(*num_apps, *batch_window, *rank_interval)),
            Scheme::Rair { msp, dpa } => Box::new(RairPolicy::with(*msp, *dpa)),
        }
    }

    /// The scheme's priority machinery as the finite transition system
    /// the static admission pipeline explores ([`noc_sim::admit`]). The
    /// RAIR variants share their pure step ([`DpaMode::next_native_high`])
    /// and priority ([`crate::policy::stage_priority`]) functions with the
    /// kernel policy, so the analyzer and the simulator cannot drift; the
    /// region-oblivious schemes map onto the round-robin/aging abstractions
    /// (their priorities are pure functions of request age, not of any
    /// router state).
    pub fn automaton(&self) -> PriorityAutomaton {
        match self {
            Scheme::RoRr => PriorityAutomaton::round_robin("RO_RR"),
            Scheme::RoAge => PriorityAutomaton::aging("RO_Age", None),
            Scheme::RoRank { batch_window, .. } => {
                PriorityAutomaton::aging("RO_Rank", Some(*batch_window))
            }
            Scheme::RoRankOnline {
                batch_window,
                rank_interval,
                ..
            } => PriorityAutomaton::aging("RO_RankOnline", Some(batch_window + rank_interval)),
            Scheme::Rair { msp, dpa } => {
                let (msp, dpa) = (*msp, *dpa);
                PriorityAutomaton {
                    name: self.label(),
                    step: Box::new(move |prev, n, f| dpa.next_native_high(prev, n, f)),
                    priority: Box::new(move |stage, nh, vc, is_native| {
                        crate::policy::stage_priority(msp, stage, nh, vc, is_native)
                    }),
                    native_pref: Some(VcTag::Regional),
                    foreign_pref: Some(VcTag::Global),
                    aging: Aging::None,
                    // Router::new resets the DPA bit to foreign-high.
                    initial_native_high: false,
                }
            }
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Scheme::RoRr => "RO_RR".into(),
            Scheme::RoAge => "RO_Age".into(),
            Scheme::RoRank { .. } => "RO_Rank".into(),
            Scheme::RoRankOnline { .. } => "RO_RankOnline".into(),
            Scheme::Rair { msp, dpa } => match (msp, dpa) {
                (m, DpaMode::Dynamic { .. }) if *m == MspConfig::va_and_sa() => "RA_RAIR".into(),
                (m, d) if *m == MspConfig::va_and_sa() => format!("RAIR_{}", d.label()),
                (m, _) => format!("RAIR_{}", m.label()),
            },
        }
    }
}

/// The routing-algorithm dimension of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Routing {
    /// Deterministic XY.
    Xy,
    /// Local-information adaptive (Duato escape + free-VC selection).
    Local,
    /// DBAR: region-aware non-local congestion selection.
    Dbar,
}

impl Routing {
    /// Instantiate the routing algorithm.
    pub fn build(&self) -> Box<dyn RoutingAlgorithm> {
        match self {
            Routing::Xy => Box::new(XyRouting),
            Routing::Local => Box::new(DuatoLocalAdaptive),
            Routing::Dbar => Box::new(DbarAdaptive),
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Routing::Xy => "XY",
            Routing::Local => "Local",
            Routing::Dbar => "DBAR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Scheme::RoRr.label(), "RO_RR");
        assert_eq!(Scheme::ro_rank(vec![0.1, 0.9]).label(), "RO_Rank");
        assert_eq!(Scheme::rair().label(), "RA_RAIR");
        assert_eq!(Scheme::rair_va_only().label(), "RAIR_VA");
        assert_eq!(Scheme::rair_native_high().label(), "RAIR_NativeH");
        assert_eq!(Scheme::rair_foreign_high().label(), "RAIR_ForeignH");
        assert_eq!(Routing::Local.label(), "Local");
        assert_eq!(Routing::Dbar.label(), "DBAR");
    }

    #[test]
    fn automata_carry_scheme_labels_and_admission_verdicts() {
        use noc_sim::admit::{check_progress, AdmitVerdict};
        use noc_sim::config::SimConfig;
        let cfg = SimConfig::table1();
        // Every shipped scheme is starvation-free.
        for s in [
            Scheme::RoRr,
            Scheme::RoAge,
            Scheme::ro_rank(vec![0.1, 0.3]),
            Scheme::ro_rank_online(2),
            Scheme::rair(),
            Scheme::rair_va_only(),
            Scheme::rair_native_high(),
        ] {
            let auto = s.automaton();
            assert_eq!(auto.name, s.label());
            let rep = check_progress(&cfg, &auto);
            assert_eq!(rep.verdict, AdmitVerdict::Admit, "{}", s.label());
        }
        // The ForeignH priority inversion is the pinned negative.
        let rep = check_progress(&cfg, &Scheme::rair_foreign_high().automaton());
        assert_eq!(rep.verdict, AdmitVerdict::Reject);
        assert!(rep.witness.is_some());
    }

    #[test]
    fn build_produces_named_policies() {
        assert_eq!(Scheme::RoRr.build().name(), "RO_RR");
        assert_eq!(Scheme::RoAge.build().name(), "RO_Age");
        assert_eq!(Scheme::ro_rank(vec![0.5]).build().name(), "RO_Rank");
        assert_eq!(Scheme::rair().build().name(), "RA_RAIR");
        assert_eq!(Routing::Xy.build().name(), "XY");
        assert_eq!(Routing::Dbar.build().name(), "DBAR");
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn scheme_serde_roundtrip() {
        for scheme in [
            Scheme::RoRr,
            Scheme::RoAge,
            Scheme::ro_rank(vec![0.1, 0.9]),
            Scheme::ro_rank_online(6),
            Scheme::rair(),
            Scheme::rair_native_high(),
            Scheme::rair_va_only(),
        ] {
            let json = serde_json_like(&scheme);
            assert!(!json.is_empty());
        }
    }

    /// Round-trip through the serde data model without pulling in a JSON
    /// dependency: use the `serde_test`-style token check via bincode-free
    /// cloning — here we settle for asserting `Serialize` compiles and the
    /// value equality survives a clone (the formats are exercised by the
    /// trace module's binary codec).
    fn serde_json_like<T: serde::Serialize + Clone + PartialEq + std::fmt::Debug>(v: &T) -> String {
        let cloned = v.clone();
        assert_eq!(&cloned, v);
        format!("{v:?}")
    }

    #[test]
    fn routing_is_copy_and_comparable() {
        let r = Routing::Dbar;
        let r2 = r;
        assert_eq!(r, r2);
        assert_ne!(Routing::Xy, Routing::Local);
    }
}
