//! Network interface (NI): per-node source queues, flit injection into the
//! router's local input port, and reply scheduling for closed-loop
//! workloads.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketInfo};
use crate::ids::{MsgClass, NodeId, PORT_LOCAL};
use crate::router::Router;
use crate::vc::VcState;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A reply waiting for its service latency to elapse.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingReply {
    ready: u64,
    /// Tie-break so the heap order is total and deterministic.
    id: u64,
    info: ReplyBlueprint,
}

/// The fields needed to build the reply packet once it becomes ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReplyBlueprint {
    dst: NodeId,
    app: crate::ids::AppId,
    class: MsgClass,
    size: u32,
}

impl Ord for PendingReply {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.id).cmp(&(other.ready, other.id))
    }
}

impl PartialOrd for PendingReply {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A packet mid-injection: remaining flits and the local VC they stream into.
#[derive(Debug)]
struct InjectProgress {
    vc: usize,
    flits: VecDeque<Flit>,
}

/// One node's network interface.
#[derive(Debug)]
pub struct Node {
    pub id: NodeId,
    /// Per-message-class source queues (unbounded; open-loop backlog shows
    /// up here and is the saturation signal).
    src_q: Vec<VecDeque<PacketInfo>>,
    inject: Option<InjectProgress>,
    class_rr: usize,
    vc_rr: usize,
    replies: BinaryHeap<Reverse<PendingReply>>,
    /// Packets extracted as stranded, waiting out their retry backoff as
    /// `(ready_cycle, packet)`. Kept unsorted (retries are rare); released
    /// in deterministic `(ready, id)` order.
    retries: Vec<(u64, PacketInfo)>,
}

impl Node {
    /// Create an empty NI. The per-node generation RNG lives in the
    /// [`Network`](crate::network::Network) (coordinator-owned under the
    /// sharded engine), not here — the NI itself is RNG-free.
    pub fn new(cfg: &SimConfig, id: NodeId) -> Self {
        Self {
            id,
            src_q: (0..cfg.num_classes).map(|_| VecDeque::new()).collect(),
            inject: None,
            class_rr: 0,
            vc_rr: 0,
            replies: BinaryHeap::new(),
            retries: Vec::new(),
        }
    }

    /// Queue a freshly generated packet.
    pub fn enqueue(&mut self, info: PacketInfo) {
        self.src_q[info.class as usize].push_back(info);
    }

    /// Schedule a reply that becomes ready (enters the source queue) at
    /// `ready`.
    pub fn schedule_reply(
        &mut self,
        ready: u64,
        id: u64,
        dst: NodeId,
        app: crate::ids::AppId,
        class: MsgClass,
        size: u32,
    ) {
        self.replies.push(Reverse(PendingReply {
            ready,
            id,
            info: ReplyBlueprint {
                dst,
                app,
                class,
                size,
            },
        }));
    }

    /// Move service-complete replies into the source queues. Returns the
    /// number of replies released (they were counted as generated when
    /// scheduled).
    pub fn release_replies(&mut self, cycle: u64) -> usize {
        let mut n = 0;
        while let Some(Reverse(r)) = self.replies.peek() {
            if r.ready > cycle {
                break;
            }
            let Reverse(r) = self.replies.pop().unwrap();
            let info = PacketInfo {
                id: r.id,
                src: self.id,
                dst: r.info.dst,
                app: r.info.app,
                class: r.info.class,
                size: r.info.size,
                birth: r.ready,
                inject: 0,
                reply: None,
            };
            self.src_q[info.class as usize].push_back(info);
            n += 1;
        }
        n
    }

    /// Schedule a source-side retry of an extracted stranded packet: the
    /// packet (same id, original birth) re-enters the source queue at
    /// `ready` and is injected afresh.
    pub fn schedule_retry(&mut self, ready: u64, info: PacketInfo) {
        self.retries.push((ready, info));
    }

    /// Move backoff-expired retries into the source queues. Returns the
    /// number released.
    pub fn release_retries(&mut self, cycle: u64) -> usize {
        if self.retries.is_empty() {
            return 0;
        }
        self.retries
            .sort_unstable_by_key(|(ready, p)| (*ready, p.id));
        let k = self.retries.partition_point(|(ready, _)| *ready <= cycle);
        for (_, info) in self.retries.drain(..k) {
            self.src_q[info.class as usize].push_back(info);
        }
        k
    }

    /// Retries still waiting out their backoff.
    pub fn pending_retries(&self) -> usize {
        self.retries.len()
    }

    /// Drop every queued packet (source queues, pending replies, pending
    /// retries) — the NI's router died. Returns the number of packets
    /// dropped; all were already counted as generated, and none of their
    /// flits were injected, so only the packet drop counter moves. An
    /// in-progress injection is deliberately left to finish streaming (the
    /// stranded sweep extracts it with full accounting).
    pub fn drop_backlog(&mut self) -> usize {
        let mut n = 0;
        for q in &mut self.src_q {
            n += q.len();
            q.clear();
        }
        n += self.replies.len();
        self.replies.clear();
        n += self.retries.len();
        self.retries.clear();
        n
    }

    /// Packets waiting in the source queues (saturation/backlog signal).
    pub fn backlog(&self) -> usize {
        self.src_q
            .iter()
            .map(std::collections::VecDeque::len)
            .sum::<usize>()
            + usize::from(self.inject.is_some())
            + self.retries.len()
    }

    /// Replies still being serviced.
    pub fn pending_replies(&self) -> usize {
        self.replies.len()
    }

    /// Cycle the earliest pending reply becomes ready (`None` when no reply
    /// is outstanding) — the NI's contribution to the fast-forward target.
    pub fn next_reply_ready(&self) -> Option<u64> {
        self.replies.peek().map(|Reverse(r)| r.ready)
    }

    /// Flits queued at the NI that already left the source queues (belong to
    /// the packet mid-injection).
    pub fn inflight_inject_flits(&self) -> usize {
        self.inject.as_ref().map_or(0, |p| p.flits.len())
    }

    /// Find an injectable local input VC for a packet of `class`: idle,
    /// empty, unheld. Adaptive VCs are preferred (rotating among them for
    /// fairness); the class's escape VC(s) are the fallback (any lane works
    /// at the injection port — the dateline lane only constrains the
    /// *output* VC a routed head may request).
    fn pick_vc(&mut self, cfg: &SimConfig, router: &Router, class: MsgClass) -> Option<usize> {
        let usable = |vc: usize| {
            let ivc = &router.inputs[PORT_LOCAL][vc];
            ivc.state == VcState::Idle && ivc.buf.is_empty() && ivc.holder.is_none()
        };
        let n_adaptive = cfg.adaptive_vcs;
        let base = cfg.num_escape_vcs();
        for k in 0..n_adaptive {
            let vc = base + (self.vc_rr + k) % n_adaptive;
            if usable(vc) {
                self.vc_rr = (self.vc_rr + k + 1) % n_adaptive;
                return Some(vc);
            }
        }
        (0..cfg.escape_lanes())
            .map(|lane| cfg.escape_vc_lane(class, lane as u8))
            .find(|&esc| usable(esc))
    }

    /// Inject up to one flit into the router's local input port. Starts a
    /// new packet (class queues served round-robin) when none is
    /// mid-injection. Returns the injected flit's accounting info, if any.
    pub fn try_inject(
        &mut self,
        cfg: &SimConfig,
        router: &mut Router,
        cycle: u64,
    ) -> Option<InjectedFlit> {
        if self.inject.is_none() {
            for k in 0..cfg.num_classes {
                let c = (self.class_rr + k) % cfg.num_classes;
                if self.src_q[c].is_empty() {
                    continue;
                }
                if let Some(vc) = self.pick_vc(cfg, router, c as MsgClass) {
                    let mut info = self.src_q[c].pop_front().unwrap();
                    info.inject = cycle;
                    self.inject = Some(InjectProgress {
                        vc,
                        flits: Flit::flits_of(info).collect(),
                    });
                    self.class_rr = (c + 1) % cfg.num_classes;
                    break;
                }
            }
        }
        if let Some(p) = &mut self.inject {
            if router.inputs[PORT_LOCAL][p.vc].buf.len() < cfg.vc_depth {
                let flit = p.flits.pop_front().expect("inject progress non-empty");
                let ev = InjectedFlit {
                    head: flit.kind.is_head(),
                    app: flit.info.app,
                    packet_id: flit.info.id,
                    vc: p.vc,
                };
                if ev.head {
                    debug_assert!(!router.inputs[PORT_LOCAL][p.vc].occupied());
                    router.inputs[PORT_LOCAL][p.vc].holder = Some(flit.info.app);
                    router.note_vc_occupied(PORT_LOCAL, p.vc);
                }
                router.inputs[PORT_LOCAL][p.vc].buf.push_back(flit);
                if p.flits.is_empty() {
                    self.inject = None;
                }
                return Some(ev);
            }
        }
        None
    }
}

/// Accounting record for one injected flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFlit {
    /// True when this was a head flit (counts one injected packet).
    pub head: bool,
    pub app: crate::ids::AppId,
    /// Packet the flit belongs to (for journey tracing).
    pub packet_id: u64,
    /// Local input VC the flit was written into (for the oracle hooks).
    pub vc: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::ReplySpec;

    fn cfg() -> SimConfig {
        SimConfig::table1()
    }

    fn pkt(id: u64, class: MsgClass, size: u32) -> PacketInfo {
        PacketInfo {
            id,
            src: 0,
            dst: 5,
            app: 0,
            class,
            size,
            birth: 0,
            inject: 0,
            reply: None,
        }
    }

    #[test]
    fn injects_one_flit_per_cycle() {
        let c = cfg();
        let mut node = Node::new(&c, 0);
        let mut router = Router::new(&c, 0, c.coord_of(0), 0);
        node.enqueue(pkt(1, 0, 5));
        let mut injected = 0;
        for cycle in 0..5 {
            if let Some(ev) = node.try_inject(&c, &mut router, cycle) {
                injected += 1;
                assert_eq!(ev.head, cycle == 0);
            }
        }
        assert_eq!(injected, 5);
        assert_eq!(node.backlog(), 0);
        // All five flits went into a single VC (wormhole/atomic).
        let occupied: Vec<usize> = (0..c.vcs_per_port())
            .filter(|&v| !router.inputs[PORT_LOCAL][v].buf.is_empty())
            .collect();
        assert_eq!(occupied.len(), 1);
        assert_eq!(router.inputs[PORT_LOCAL][occupied[0]].buf.len(), 5);
    }

    #[test]
    fn injection_stalls_when_no_vc_free() {
        let c = cfg();
        let mut node = Node::new(&c, 0);
        let mut router = Router::new(&c, 0, c.coord_of(0), 0);
        // Occupy every local VC.
        for vc in 0..c.vcs_per_port() {
            router.inputs[PORT_LOCAL][vc].holder = Some(9);
        }
        node.enqueue(pkt(1, 0, 1));
        assert!(node.try_inject(&c, &mut router, 0).is_none());
        assert_eq!(node.backlog(), 1);
    }

    #[test]
    fn adaptive_vcs_preferred_over_escape() {
        let c = cfg();
        let mut node = Node::new(&c, 0);
        let mut router = Router::new(&c, 0, c.coord_of(0), 0);
        node.enqueue(pkt(1, 0, 1));
        assert!(node.try_inject(&c, &mut router, 0).is_some());
        let esc = c.escape_vc(0);
        assert!(router.inputs[PORT_LOCAL][esc].buf.is_empty());
    }

    #[test]
    fn escape_used_as_fallback() {
        let c = cfg();
        let mut node = Node::new(&c, 0);
        let mut router = Router::new(&c, 0, c.coord_of(0), 0);
        for vc in c.adaptive_vc_range() {
            router.inputs[PORT_LOCAL][vc].holder = Some(9);
        }
        node.enqueue(pkt(1, 0, 1));
        assert!(node.try_inject(&c, &mut router, 0).is_some());
        assert_eq!(router.inputs[PORT_LOCAL][c.escape_vc(0)].buf.len(), 1);
    }

    #[test]
    fn replies_release_in_ready_order() {
        let c = cfg();
        let mut node = Node::new(&c, 3);
        node.schedule_reply(20, 100, 7, 0, 0, 5);
        node.schedule_reply(10, 101, 8, 0, 0, 1);
        assert_eq!(node.release_replies(5), 0);
        assert_eq!(node.release_replies(10), 1);
        assert_eq!(node.pending_replies(), 1);
        assert_eq!(node.release_replies(25), 1);
        // Released replies sit in the source queue with src = this node.
        assert_eq!(node.backlog(), 2);
        let first = node.src_q[0].front().unwrap();
        assert_eq!(first.src, 3);
        assert_eq!(first.dst, 8);
        assert_eq!(first.birth, 10);
    }

    #[test]
    fn class_queues_round_robin() {
        let c = SimConfig::table1_req_reply();
        let mut node = Node::new(&c, 0);
        let mut router = Router::new(&c, 0, c.coord_of(0), 0);
        node.enqueue(pkt(1, 0, 1));
        node.enqueue(pkt(2, 1, 1));
        node.enqueue(pkt(3, 0, 1));
        // Three single-flit packets, alternating classes 0,1,0.
        for cycle in 0..3 {
            assert!(node.try_inject(&c, &mut router, cycle).is_some());
        }
        assert_eq!(node.backlog(), 0);
    }

    #[test]
    fn reply_spec_on_request_roundtrip() {
        // Just exercise the ReplySpec plumbing shape used by Network.
        let spec = ReplySpec {
            service_latency: 6,
            size: 5,
            class: 1,
        };
        let mut p = pkt(1, 0, 1);
        p.reply = Some(spec);
        assert_eq!(p.reply.unwrap().service_latency, 6);
    }
}
