//! # rair-repro
//!
//! Umbrella crate for the reproduction of **"RAIR: Interference Reduction in
//! Regionalized Networks-on-Chip"** (Chen, Hwang, Pinkston — IPDPS 2013).
//!
//! This crate re-exports the workspace members so examples and downstream
//! users get one coherent entry point:
//!
//! * [`noc_sim`] — cycle-accurate wormhole virtual-channel NoC simulator
//!   (the GARNET-equivalent substrate, built from scratch).
//! * [`rair`] — the paper's contribution: VC regionalization, multi-stage
//!   prioritization and dynamic priority adaptation, plus baseline schemes.
//! * [`traffic`] — synthetic traffic patterns, regionalized scenarios and
//!   PARSEC-like statistical workload models.
//! * [`metrics`] — latency accounting and report tables.
//! * [`experiments`] — drivers that regenerate every table and figure of the
//!   paper's evaluation section.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use experiments;
pub use metrics;
pub use noc_sim;
pub use rair;
pub use traffic;
