//! Deterministic dimension-order (XY) routing.

use super::{RoutingAlgorithm, SelectCtx};
use crate::config::SimConfig;
use crate::ids::{Coord, Port};

/// Pure dimension-order: the single escape-path port is offered on the
/// adaptive VCs as well, so all VCs are usable but no path diversity
/// exists. Inherently deadlock-free (on wrapping topologies via the
/// dateline escape lanes).
#[derive(Debug, Clone, Copy, Default)]
pub struct XyRouting;

impl RoutingAlgorithm for XyRouting {
    fn name(&self) -> &'static str {
        "XY"
    }

    fn adaptive_ports(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2] {
        [Some(crate::topology::escape_hop(cfg, cur, dst).0), None]
    }

    fn select(&self, _ctx: &SelectCtx<'_>, _cands: &[Port]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PORT_EAST, PORT_SOUTH, PORT_WEST};
    use crate::topology::TopologyKind;

    #[test]
    fn single_dor_candidate() {
        let cfg = SimConfig::table1();
        let r = XyRouting;
        let cur = Coord { x: 0, y: 0 };
        let dst = Coord { x: 3, y: 3 };
        assert_eq!(r.adaptive_ports(&cfg, cur, dst), [Some(PORT_EAST), None]);
        let cur2 = Coord { x: 3, y: 0 };
        assert_eq!(r.adaptive_ports(&cfg, cur2, dst), [Some(PORT_SOUTH), None]);
    }

    #[test]
    fn torus_takes_wraparound_shortcut() {
        let mut cfg = SimConfig::table1();
        cfg.topology = TopologyKind::Torus;
        let r = XyRouting;
        let cur = Coord { x: 0, y: 0 };
        let dst = Coord { x: 7, y: 0 };
        assert_eq!(r.adaptive_ports(&cfg, cur, dst), [Some(PORT_WEST), None]);
    }
}
