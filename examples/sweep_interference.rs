//! Interference sweep: a library-user's version of the paper's Figure 9
//! study — sweep the inter-region fraction `p` of a light application's
//! traffic and plot (as text) how much interference each scheme removes.
//!
//! ```text
//! cargo run --release --example sweep_interference [p_steps]
//! ```

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

fn apl_app0(scheme: &Scheme, p: f64) -> f64 {
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, p, 0.035, 0.33);
    let mut net = Network::new(
        cfg,
        region,
        Routing::Local.build(),
        scheme.build(),
        Box::new(scenario),
        3,
    );
    net.run_warmup_measure(3_000, 20_000);
    net.stats
        .recorder
        .app(0)
        .mean(LatencyKind::Network)
        .unwrap()
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let schemes = [
        ("RO_RR", Scheme::RoRr),
        ("RAIR_VA", Scheme::rair_va_only()),
        ("RAIR_VA+SA", Scheme::rair()),
    ];
    println!("APL of the light application vs inter-region fraction p\n");
    print!("{:>6}", "p");
    for (label, _) in &schemes {
        print!(" {label:>12}");
    }
    println!("  {:>22}", "RAIR_VA+SA gain | bar");
    for i in 0..=steps {
        let p = i as f64 / steps as f64;
        let apls: Vec<f64> = schemes.iter().map(|(_, s)| apl_app0(s, p)).collect();
        let gain = 1.0 - apls[2] / apls[0];
        let bar = "#".repeat((gain * 100.0).round().max(0.0) as usize);
        print!("{:>5.0}%", p * 100.0);
        for a in &apls {
            print!(" {a:>12.2}");
        }
        println!("  {:>14.1}% | {bar}", gain * 100.0);
    }
    println!("\ninterference (and RAIR's leverage) grows with the inter-region share.");
}
