//! Figure 12 — impact of dynamic priority adaptation.
//!
//! Two contrasting four-application scenarios (Fig. 11):
//!
//! * **(a)** apps 0–2 low load with 30 % of their traffic into app 3's
//!   region; app 3 high load, intra-region. Prioritizing *foreign* traffic
//!   should win (the low apps' global packets traverse region 3).
//! * **(b)** apps 0–2 low load, intra-region; app 3 high load with 30 %
//!   sprayed into the other regions. Prioritizing *native* traffic should
//!   win (the low apps defend against app 3's foreign flood).
//!
//! Neither fixed policy wins both; DPA adapts and matches the better one in
//! each — the paper reports 12.8 % (a) and 12.2 % (b) average APL
//! reduction for RAIR_DPA over RO_RR.

use crate::figs::quadrant_sat;
use crate::runner::{run_one, run_parallel, ExpConfig, Job, RunResult};
use crate::sweep::build_network;
use metrics::report::pct;
use metrics::Table;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::{four_app_dpa_a, four_app_dpa_b};

/// Which Fig. 11 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Low apps send into the hot region.
    A,
    /// The hot app sprays into the low regions.
    B,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::A => "a",
            Variant::B => "b",
        }
    }
}

/// Results for one scenario variant.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    pub variant: Variant,
    /// `(label, per-app APL)`, RO_RR first.
    pub schemes: Vec<(String, Vec<f64>)>,
}

impl Fig12Result {
    /// APL reduction of `label` vs RO_RR, averaged over applications
    /// (positive = improvement).
    pub fn avg_reduction(&self, label: &str) -> f64 {
        let base = &self.schemes[0].1;
        let (_, apl) = self
            .schemes
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no scheme {label}"));
        let per_app: Vec<f64> = apl.iter().zip(base).map(|(a, b)| 1.0 - a / b).collect();
        per_app.iter().sum::<f64>() / per_app.len() as f64
    }
}

fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("RO_RR", Scheme::RoRr),
        ("RAIR_NativeH", Scheme::rair_native_high()),
        ("RAIR_ForeignH", Scheme::rair_foreign_high()),
        ("RAIR_DPA", Scheme::rair()),
    ]
}

/// Run one variant.
pub fn run_variant(ec: &ExpConfig, variant: Variant) -> Fig12Result {
    // Low apps at 5 % and the hot app at 90 % of the quadrant's intra-region
    // saturation load. The paper gives no numeric loads for Fig. 11; these
    // keep region 3's total offered load (its own 90 % plus the three low
    // apps' 30 % inter-region shares in scenario (a)) just below saturation,
    // which reproduces the paper's reported DPA gains (see EXPERIMENTS.md).
    let sat = quadrant_sat(ec);
    let (low, high) = (0.05 * sat, 0.90 * sat);
    let jobs: Vec<Job> = schemes()
        .into_iter()
        .map(|(label, scheme)| {
            let ec = *ec;
            let label = label.to_string();

            Job::new(label.clone(), move || {
                let cfg = SimConfig::table1();
                let (region, scenario) = match variant {
                    Variant::A => four_app_dpa_a(&cfg, low, high),
                    Variant::B => four_app_dpa_b(&cfg, low, high),
                };
                let net = build_network(
                    &cfg,
                    &region,
                    &scheme,
                    Routing::Local,
                    Box::new(scenario),
                    ec.seed,
                );
                run_one(label.clone(), net, &ec)
            })
        })
        .collect();
    let results = run_parallel(jobs);
    Fig12Result {
        variant,
        schemes: results
            .into_iter()
            .map(|r: RunResult| {
                let apl = (0..4).map(|a| r.app_apl(a)).collect();
                (r.label, apl)
            })
            .collect(),
    }
}

/// Run both variants.
pub fn run(ec: &ExpConfig) -> (Fig12Result, Fig12Result) {
    (run_variant(ec, Variant::A), run_variant(ec, Variant::B))
}

/// Render one variant's table: APL reduction vs RO_RR per app + average.
pub fn table(res: &Fig12Result) -> Table {
    let mut t = Table::new(
        format!(
            "Fig.12({}) — APL reduction vs RO_RR (DPA scenarios)",
            res.variant.label()
        ),
        &["scheme", "App0", "App1", "App2", "App3", "avg"],
    );
    let base = res.schemes[0].1.clone();
    for (label, apl) in res.schemes.iter().skip(1) {
        let red: Vec<f64> = apl.iter().zip(&base).map(|(a, b)| 1.0 - a / b).collect();
        let avg = red.iter().sum::<f64>() / red.len() as f64;
        let mut row = vec![label.clone()];
        row.extend(red.iter().map(|&r| pct(r)));
        row.push(pct(avg));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Fig12Result {
        Fig12Result {
            variant: Variant::A,
            schemes: vec![
                ("RO_RR".into(), vec![20.0, 20.0, 20.0, 40.0]),
                ("RAIR_DPA".into(), vec![16.0, 18.0, 14.0, 44.0]),
            ],
        }
    }

    #[test]
    fn avg_reduction_arithmetic() {
        let r = synthetic();
        // Per-app reductions: 0.2, 0.1, 0.3, -0.1 → avg 0.125.
        assert!((r.avg_reduction("RAIR_DPA") - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no scheme")]
    fn unknown_scheme_panics() {
        synthetic().avg_reduction("NOPE");
    }

    #[test]
    fn table_skips_baseline_row() {
        let t = table(&synthetic());
        assert_eq!(t.num_rows(), 1);
        let s = t.render();
        assert!(s.contains("RAIR_DPA"));
        assert!(s.contains("+12.5%"));
        assert!(s.contains("(a)"));
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::A.label(), "a");
        assert_eq!(Variant::B.label(), "b");
    }
}
