//! # experiments — regenerating the paper's evaluation
//!
//! One driver per table/figure of §V (plus the §III LBDR analysis and two
//! ablations), a parallel sweep runner, and the saturation-load cache that
//! anchors the "% of saturation" load definitions.
//!
//! The `repro` binary exposes all drivers from the command line:
//!
//! ```text
//! repro [--quick] [--seed N] <table1|fig9|fig10|fig12|fig14|fig15|fig17|
//!                             lbdr|ablation-delta|ablation-vcsplit|all>
//! ```

pub mod admit;
pub mod bench_kernel;
pub mod bench_model;
pub mod bench_parallel;
pub mod figs;
pub mod runner;
pub mod service;
pub mod sweep;
pub mod verify_config;

pub use runner::{
    run_one, run_parallel, run_parallel_checkpointed, run_parallel_checkpointed_with,
    run_parallel_results, ExpConfig, Job, JobError, RunResult,
};
