//! Table 1 — the full-system configuration, reproduced as the simulator's
//! default parameters.

use metrics::Table;
use noc_sim::config::SimConfig;

/// Render the Table 1 configuration actually used by the simulator.
pub fn table() -> Table {
    let c = SimConfig::table1();
    let mut t = Table::new(
        "Table 1 — system configuration (paper vs simulator defaults)",
        &["parameter", "paper", "simulator"],
    );
    t.row(vec![
        "Cores".into(),
        "64 UltraSPARC III+".into(),
        format!("{} nodes ({}x{} mesh)", c.num_nodes(), c.width, c.height),
    ]);
    t.row(vec![
        "Shared L2$/bank latency".into(),
        "6 cycles".into(),
        format!("{} cycles", c.l2_latency),
    ]);
    t.row(vec![
        "Memory latency".into(),
        "128 cycles".into(),
        format!("{} cycles", c.mem_latency),
    ]);
    t.row(vec![
        "Block size".into(),
        "64 bytes".into(),
        format!("{} bytes", c.block_bytes),
    ]);
    t.row(vec![
        "Virtual channels".into(),
        "4/class, atomic, 5-flit".into(),
        format!(
            "{} adaptive (+{} escape), atomic, {}-flit",
            c.adaptive_vcs, c.num_classes, c.vc_depth
        ),
    ]);
    t.row(vec![
        "Link bandwidth".into(),
        "128 bits/cycle".into(),
        "1 flit (16 B)/cycle".into(),
    ]);
    t.row(vec![
        "Packets".into(),
        "16B 1-flit / 64B+head 5-flit".into(),
        format!("{} / {} flits", c.short_flits, c.long_flits),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let t = super::table();
        assert_eq!(t.num_rows(), 7);
        let s = t.render();
        assert!(s.contains("128 cycles"));
        assert!(s.contains("64 nodes"));
    }
}
