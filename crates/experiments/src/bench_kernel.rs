//! `repro bench-kernel` — kernel throughput benchmark across the
//! scheme × routing matrix.
//!
//! Times the optimized kernel (idle fast-forward + active-set/bitset fast
//! paths) against the exhaustive reference kernel on *identical* offered
//! traffic (a trace captured once per load point and replayed into both),
//! asserts the two produce bit-identical [`SimStats::digest`] values, and
//! writes the machine-readable trajectory to `BENCH_kernel.json` so future
//! changes can track kernel regressions.
//!
//! [`SimStats::digest`]: noc_sim::stats::SimStats::digest

use crate::runner::ExpConfig;
use crate::sweep::build_network;
use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::network::Network;
use noc_sim::region::RegionMap;
use noc_sim::source::NoTraffic;
use rair::scheme::{Routing, Scheme};
use std::time::Instant;
use traffic::scenario::two_app;
use traffic::trace::{Trace, TraceReplay};

/// Nominal saturation anchor the load percentages are expressed against
/// (flits/cycle/node) — a representative two-application saturation load on
/// the Table 1 mesh, fixed so the bench is self-contained and comparable
/// across machines without a saturation search.
pub const NOMINAL_SAT: f64 = 0.30;

/// One benchmark point: a (scheme, routing, load) cell timed under both
/// kernels.
#[derive(Debug, Clone)]
pub struct BenchRow {
    pub scheme: String,
    pub routing: &'static str,
    /// Offered load as a percentage of [`NOMINAL_SAT`]; 0 marks the idle
    /// (no-traffic) row.
    pub load_pct: u32,
    /// Simulated cycles per point (warmup + measurement).
    pub cycles: u64,
    /// Optimized-kernel throughput in simulated cycles per wall second.
    pub fast_ticks_per_sec: f64,
    /// Exhaustive reference-kernel throughput.
    pub exhaustive_ticks_per_sec: f64,
    /// `fast / exhaustive`.
    pub speedup: f64,
    /// Whole cycles the idle fast-forward jumped (optimized run).
    pub idle_cycles_skipped: u64,
    /// Router×phase visits the active-set fast path elided (optimized run).
    pub router_cycles_skipped: u64,
    /// The (identical) stats digest of both runs.
    pub digest: u64,
}

fn time_run(mut net: Network, warmup: u64, measure: u64) -> (f64, u64, u64, u64) {
    let t0 = Instant::now();
    net.run_warmup_measure(warmup, measure);
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    (
        (warmup + measure) as f64 / dt,
        net.stats.digest(),
        net.stats.idle_cycles_skipped,
        net.stats.router_cycles_skipped,
    )
}

/// Run the full matrix. Panics if any cell's optimized and exhaustive
/// kernels disagree on the stats digest — the bench doubles as an equality
/// check on real workloads.
pub fn run(ec: &ExpConfig) -> Vec<BenchRow> {
    let cfg = SimConfig::table1();
    let cycles: u64 = if ec.quick { 4_000 } else { 20_000 };
    let warmup = cycles / 5;
    let measure = cycles - warmup;
    let schemes: Vec<Scheme> = vec![
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank_online(2),
        Scheme::rair(),
    ];
    let routings = [Routing::Xy, Routing::Local, Routing::Dbar];
    let mut rows = Vec::new();

    // Idle row: an empty network isolates the fast-forward itself.
    {
        let region = RegionMap::single(&cfg);
        let build = |fast: bool| {
            let mut net = build_network(
                &cfg,
                &region,
                &Scheme::RoRr,
                Routing::Local,
                Box::new(NoTraffic),
                ec.seed,
            );
            if !fast {
                net.set_fast_forward(false);
                net.set_force_exhaustive(true);
            }
            net
        };
        let (fast_tps, fast_digest, idle, skipped) = time_run(build(true), warmup, measure);
        let (ex_tps, ex_digest, _, _) = time_run(build(false), warmup, measure);
        assert_eq!(fast_digest, ex_digest, "idle kernel digest diverged");
        rows.push(BenchRow {
            scheme: "idle".into(),
            routing: "Local",
            load_pct: 0,
            cycles,
            fast_ticks_per_sec: fast_tps,
            exhaustive_ticks_per_sec: ex_tps,
            speedup: fast_tps / ex_tps,
            idle_cycles_skipped: idle,
            router_cycles_skipped: skipped,
            digest: fast_digest,
        });
    }

    for load_pct in [5u32, 30, 80] {
        let rate = NOMINAL_SAT * load_pct as f64 / 100.0;
        let (region, scenario) = two_app(&cfg, 0.3, rate, rate);
        // One trace per load point: every scheme × routing cell (and both
        // kernels) sees the identical offered traffic.
        let trace = Trace::capture(scenario, cfg.num_nodes() as u16, cycles, ec.seed);
        for scheme in &schemes {
            for routing in routings {
                let build = |fast: bool| {
                    let replay = TraceReplay::new(&trace, cfg.num_nodes() as u16);
                    let mut net =
                        build_network(&cfg, &region, scheme, routing, Box::new(replay), ec.seed);
                    if !fast {
                        net.set_fast_forward(false);
                        net.set_force_exhaustive(true);
                    }
                    net
                };
                let (fast_tps, fast_digest, idle, skipped) = time_run(build(true), warmup, measure);
                let (ex_tps, ex_digest, _, _) = time_run(build(false), warmup, measure);
                assert_eq!(
                    fast_digest,
                    ex_digest,
                    "kernel digest diverged: {} / {} at {load_pct}%",
                    scheme.label(),
                    routing.label(),
                );
                rows.push(BenchRow {
                    scheme: scheme.label(),
                    routing: routing.label(),
                    load_pct,
                    cycles,
                    fast_ticks_per_sec: fast_tps,
                    exhaustive_ticks_per_sec: ex_tps,
                    speedup: fast_tps / ex_tps,
                    idle_cycles_skipped: idle,
                    router_cycles_skipped: skipped,
                    digest: fast_digest,
                });
            }
        }
    }
    rows
}

/// Render the matrix as a report table.
pub fn table(rows: &[BenchRow]) -> Table {
    let mut t = Table::new(
        "Kernel throughput — optimized vs exhaustive (identical traffic, digest-checked)",
        &[
            "scheme",
            "routing",
            "load%",
            "fast c/s",
            "exh c/s",
            "speedup",
            "idle-skip",
            "visit-skip",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.routing.to_string(),
            r.load_pct.to_string(),
            format!("{:.0}", r.fast_ticks_per_sec),
            format!("{:.0}", r.exhaustive_ticks_per_sec),
            format!("{:.2}x", r.speedup),
            r.idle_cycles_skipped.to_string(),
            r.router_cycles_skipped.to_string(),
        ]);
    }
    t
}

/// Serialize the rows as JSON (hand-rolled — the vendored serde is a stub).
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("{\n  \"nominal_sat_flits_per_cycle_node\": ");
    out.push_str(&format!("{NOMINAL_SAT},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"routing\": \"{}\", \"load_pct\": {}, \
             \"cycles\": {}, \"fast_ticks_per_sec\": {:.1}, \
             \"exhaustive_ticks_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"idle_cycles_skipped\": {}, \"router_cycles_skipped\": {}, \
             \"digest\": \"{:016x}\"}}{}\n",
            r.scheme,
            r.routing,
            r.load_pct,
            r.cycles,
            r.fast_ticks_per_sec,
            r.exhaustive_ticks_per_sec,
            r.speedup,
            r.idle_cycles_skipped,
            r.router_cycles_skipped,
            r.digest,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![BenchRow {
            scheme: "RO_RR".into(),
            routing: "XY",
            load_pct: 5,
            cycles: 1000,
            fast_ticks_per_sec: 12345.6,
            exhaustive_ticks_per_sec: 2345.6,
            speedup: 5.264,
            idle_cycles_skipped: 10,
            router_cycles_skipped: 999,
            digest: 0xabcd,
        }];
        let j = to_json(&rows);
        assert!(j.contains("\"scheme\": \"RO_RR\""));
        assert!(j.contains("\"speedup\": 5.264"));
        assert!(j.contains("\"digest\": \"000000000000abcd\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn table_has_row_per_bench_point() {
        let rows = vec![
            BenchRow {
                scheme: "idle".into(),
                routing: "Local",
                load_pct: 0,
                cycles: 100,
                fast_ticks_per_sec: 1.0,
                exhaustive_ticks_per_sec: 1.0,
                speedup: 1.0,
                idle_cycles_skipped: 0,
                router_cycles_skipped: 0,
                digest: 0,
            };
            3
        ];
        assert_eq!(table(&rows).num_rows(), 3);
    }
}
