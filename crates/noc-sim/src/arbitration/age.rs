//! Age-based (oldest-first) arbitration [Abts & Weisser, SC'07].

use super::{ArbReq, ArbStage, PriorityPolicy};
use crate::router::Router;
use crate::vc::VcClass;

/// Oldest packet (earliest generation cycle) wins every arbitration.
/// Region- and application-oblivious; listed among the early proposals in
/// §III.A of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgeBased;

impl PriorityPolicy for AgeBased {
    fn name(&self) -> &'static str {
        "RO_Age"
    }

    fn priority(
        &self,
        _stage: ArbStage,
        _router: &Router,
        _out_vc: Option<VcClass>,
        req: &ArbReq,
    ) -> u64 {
        // Earlier birth → higher priority.
        u64::MAX - req.birth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn older_beats_younger() {
        let cfg = SimConfig::table1();
        let r = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        let p = AgeBased;
        let old = ArbReq {
            app: 0,
            class: 0,
            birth: 10,
            inject: 11,
            is_native: true,
        };
        let young = ArbReq { birth: 500, ..old };
        assert!(
            p.priority(ArbStage::SaIn, &r, None, &old)
                > p.priority(ArbStage::SaIn, &r, None, &young)
        );
    }
}
