//! # noc-sim — cycle-accurate NoC simulator
//!
//! A from-scratch, GARNET-equivalent simulator of a 2-D mesh network-on-chip
//! with wormhole switching, virtual channels, credit-based flow control and
//! the canonical pipelined router (RC → VA → SA → ST → LT) including all
//! four arbitration steps (VA_in, VA_out, SA_in, SA_out).
//!
//! This crate is the substrate for the reproduction of *"RAIR: Interference
//! Reduction in Regionalized Networks-on-Chip"* (IPDPS 2013). It provides:
//!
//! * flit-level simulation with the paper's Table 1 parameters as defaults,
//! * escape-VC deadlock-free adaptive routing (Duato), plus XY and DBAR,
//! * pluggable arbitration priority policies ([`arbitration::PriorityPolicy`])
//!   — the RAIR policy itself lives in the `rair` crate,
//! * region maps ([`region::RegionMap`]) turning a mesh into an RNoC,
//! * pluggable traffic sources ([`source::TrafficSource`]),
//! * deterministic seeded execution (identical seeds ⇒ identical flit
//!   schedules).
//!
//! ## Quick example
//!
//! ```
//! use noc_sim::prelude::*;
//!
//! let cfg = SimConfig::table1();
//! let region = RegionMap::single(&cfg);
//! let mut net = Network::new(
//!     cfg,
//!     region,
//!     Box::new(DuatoLocalAdaptive),
//!     Box::new(RoundRobin),
//!     Box::new(NoTraffic),
//!     42,
//! );
//! net.run(100);
//! assert!(net.is_drained());
//! ```

#![forbid(unsafe_code)]

pub mod admit;
pub mod analysis;
pub mod arbitration;
pub mod bits;
pub mod config;
pub mod fault;
pub mod flit;
pub mod ids;
pub mod network;
pub mod node;
pub mod oracle;
pub mod region;
pub mod router;
pub mod routing;
pub mod shard;
pub mod source;
pub mod stats;
pub mod topology;
pub mod vc;
pub mod verify;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::admit::{
        admit_network, admit_network_cached, Admission, AdmitVerdict, AdmitWitness,
        PriorityAutomaton, PropertyReport,
    };
    pub use crate::arbitration::{AgeBased, ArbReq, ArbStage, PriorityPolicy, RoundRobin, StcRank};
    pub use crate::config::SimConfig;
    pub use crate::fault::{
        DegradedMode, DegradedTable, Fault, FaultEvent, FaultTimeline, ScheduledFault,
    };
    pub use crate::flit::{Flit, FlitKind, PacketInfo, ReplySpec};
    pub use crate::ids::{AppId, Coord, MsgClass, NodeId, Port, APP_NONE};
    pub use crate::network::Network;
    pub use crate::oracle::{OracleConfig, OracleViolation};
    pub use crate::region::RegionMap;
    pub use crate::routing::{
        DbarAdaptive, DuatoLocalAdaptive, NextHops, RoutingAlgorithm, XyRouting,
    };
    pub use crate::source::{NewPacket, NoTraffic, ScriptedSource, TrafficSource};
    pub use crate::stats::SimStats;
    pub use crate::topology::{Topology, TopologyKind};
    pub use crate::vc::{VcClass, VcTag};
    pub use crate::verify::{Verifier, VerifyConfig, VerifyReport, VerifyViolation, Witness};
    pub use metrics::LatencyKind;
}
