//! Channel-dependency-graph construction and Tarjan SCC cycle detection.
//!
//! Channel nodes are `(router, port, dateline-lane)` triples — 4 ports per
//! router, [`SimConfig::escape_lanes`] lanes per port (1 on the non-wrapping
//! grids, 2 on torus/ring) — with the message-class dimension collapsed as
//! documented in the module root. For every destination the routing
//! function is enumerated symbolically through
//! [`RoutingAlgorithm::next_hops`](crate::routing::RoutingAlgorithm::next_hops),
//! yielding per-router usable adaptive ports and the escape (port, lane).
//! Two graphs can be requested:
//!
//! * **extended escape graph** (the default, Duato's criterion): an edge
//!   `e1 → e2` between escape channels whenever a packet holding `e1` can
//!   reach, through zero or more adaptive channels, a router where it
//!   requests `e2`. Because all usable hops are minimal under the
//!   topology's distance, the adaptive reachability closure is computed by
//!   dynamic programming in increasing distance order (the adaptive
//!   subgraph per destination is a DAG).
//! * **full adaptive graph** (`without_escape`): direct dependencies
//!   between consecutive adaptive channels — this is what must be acyclic
//!   when no escape path exists. Lanes are irrelevant here (only lane 0 is
//!   populated).

use super::legality;
use super::{
    ChannelClass, ChannelId, Verifier, VerifyReport, VerifyViolation, Witness,
    MAX_RECORDED_VIOLATIONS,
};
use crate::config::SimConfig;
use crate::ids::{Coord, NodeId, Port};
use crate::topology;
use std::collections::{BTreeSet, VecDeque};

/// Capped violation recorder (the count is uncapped).
pub(super) struct Violations {
    pub list: Vec<VerifyViolation>,
    pub count: u64,
}

impl Violations {
    fn new() -> Self {
        Self {
            list: Vec::new(),
            count: 0,
        }
    }

    pub(super) fn record(&mut self, check: &'static str, witness: Witness) {
        self.count += 1;
        if self.list.len() < MAX_RECORDED_VIOLATIONS {
            self.list.push(VerifyViolation { check, witness });
        }
    }

    /// Record at the *front* of the report so a witness cycle survives the
    /// cap even when thousands of legality violations precede it.
    fn record_front(&mut self, check: &'static str, witness: Witness) {
        self.count += 1;
        self.list.insert(0, VerifyViolation { check, witness });
        self.list.truncate(MAX_RECORDED_VIOLATIONS);
    }
}

/// Channel node index of `(router, port, lane)` — ports 1..=4 map to
/// 0..=3, `lanes` is the per-port lane count.
#[inline]
fn chan(lanes: usize, router: usize, port: Port, lane: usize) -> usize {
    (router * 4 + (port - 1)) * lanes + lane
}

fn chan_id(lanes: usize, idx: usize, escape: bool) -> ChannelId {
    let router = (idx / (4 * lanes)) as NodeId;
    let rem = idx % (4 * lanes);
    ChannelId {
        router,
        port: rem / lanes + 1,
        class: if escape {
            ChannelClass::Escape(0)
        } else {
            ChannelClass::Adaptive
        },
        lane: (rem % lanes) as u8,
    }
}

/// Is `p` a legal hop from `cur` toward `d`: a non-local port with a
/// physical link, and minimal (reduces the topology's distance)?
fn valid_hop(cfg: &SimConfig, cur: Coord, d: Coord, p: Port) -> bool {
    (1..=4).contains(&p)
        && topology::has_link(cfg, cur, p)
        && topology::distance(cfg, topology::step(cfg, cur, p), d) + 1
            == topology::distance(cfg, cur, d)
}

/// Detour-escape relaxation: any port with a physical link is a legal
/// *escape* hop (fault detours are deliberately non-minimal); reachability
/// is then proven by the escape-chain walk instead of the distance DP.
fn valid_detour_hop(cfg: &SimConfig, cur: Coord, p: Port) -> bool {
    (1..=4).contains(&p) && topology::has_link(cfg, cur, p)
}

pub(super) fn run(v: &Verifier<'_>) -> VerifyReport {
    let cfg = v.cfg;
    let n = cfg.num_routers();
    let lanes = cfg.escape_lanes();
    let words = n.div_ceil(64);
    let mut vio = Violations::new();
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n * 4 * lanes];
    let mut bad_hops: BTreeSet<(usize, Port)> = BTreeSet::new();
    let mut pairs = 0usize;

    // Routers in increasing distance from the destination; recomputed per
    // destination. All usable hops are minimal, so every hop moves to an
    // earlier router in this order — both the adaptive closure and the
    // legality DP walk it.
    let mut order: Vec<usize> = (0..n).collect();

    for dst_idx in 0..n {
        let d = cfg.router_coord(dst_idx);
        let mut adap: Vec<[Option<Port>; 2]> = vec![[None; 2]; n];
        let mut esc: Vec<Option<(Port, u8)>> = vec![None; n];
        for (r, (ad, es)) in adap.iter_mut().zip(esc.iter_mut()).enumerate() {
            if r == dst_idx || !v.pair_usable(r as NodeId, dst_idx as NodeId) {
                continue;
            }
            pairs += 1;
            let cur = cfg.router_coord(r);
            let hops = v.routing.next_hops(cfg, cur, d);
            let mut k = 0;
            for p in hops.adaptive.into_iter().flatten() {
                if !valid_hop(cfg, cur, d, p) {
                    if bad_hops.insert((r, p)) {
                        vio.record(
                            "routing-function",
                            Witness::BadHop {
                                router: r as NodeId,
                                dst: dst_idx as NodeId,
                                port: p,
                            },
                        );
                    }
                    continue;
                }
                if v.link_usable(r as NodeId, p) {
                    ad[k] = Some(p);
                    k += 1;
                }
            }
            if v.use_escape {
                let e = hops.escape;
                let e_ok = if v.detour_escape {
                    valid_detour_hop(cfg, cur, e)
                } else {
                    valid_hop(cfg, cur, d, e)
                };
                if !e_ok || hops.escape_lane as usize >= lanes {
                    if bad_hops.insert((r, e)) {
                        vio.record(
                            "routing-function",
                            Witness::BadHop {
                                router: r as NodeId,
                                dst: dst_idx as NodeId,
                                port: e,
                            },
                        );
                    }
                } else if v.link_usable(r as NodeId, e) {
                    *es = Some((e, hops.escape_lane));
                }
                if es.is_none() {
                    vio.record(
                        "escape-connected",
                        Witness::NoEscape {
                            router: r as NodeId,
                            dst: dst_idx as NodeId,
                        },
                    );
                }
            } else if ad[0].is_none() {
                vio.record(
                    "escape-connected",
                    Witness::NoRoute {
                        router: r as NodeId,
                        dst: dst_idx as NodeId,
                    },
                );
            }
        }

        order.sort_by_key(|&r| topology::distance(cfg, cfg.router_coord(r), d));

        if v.use_escape {
            extend_escape_edges(cfg, dst_idx, &order, &adap, &esc, words, lanes, &mut adj);
        } else {
            direct_adaptive_edges(cfg, dst_idx, &adap, lanes, &mut adj);
        }

        legality::check_dst(cfg, v, dst_idx, &order, &adap, &esc, &mut vio);
    }

    let adj: Vec<Vec<u32>> = adj.into_iter().map(|s| s.into_iter().collect()).collect();
    let dep_edges = adj.iter().map(Vec::len).sum();
    if let Some(comp) = first_nontrivial_scc(&adj) {
        let cycle = extract_cycle(&adj, &comp);
        vio.record_front(
            "escape-cdg-acyclic",
            Witness::Cycle(
                cycle
                    .into_iter()
                    .map(|i| chan_id(lanes, i, v.use_escape))
                    .collect(),
            ),
        );
    }

    // One channel per physical link and lane (class-0 view; classes are
    // isomorphic).
    let channels = (0..n)
        .map(|r| {
            let c = cfg.router_coord(r);
            (1..=4).filter(|&p| topology::has_link(cfg, c, p)).count() * lanes
        })
        .sum();

    VerifyReport {
        routing: v.routing.name(),
        channels,
        dep_edges,
        pairs_checked: pairs,
        violations: vio.list,
        violation_count: vio.count,
    }
}

/// Add the extended escape dependencies for one destination: for each
/// escape channel `(r, p, lane)`, every escape channel reachable from
/// `step(r, p)` through zero or more adaptive channels is a dependency
/// target.
#[allow(clippy::too_many_arguments)]
fn extend_escape_edges(
    cfg: &SimConfig,
    dst_idx: usize,
    order: &[usize],
    adap: &[[Option<Port>; 2]],
    esc: &[Option<(Port, u8)>],
    words: usize,
    lanes: usize,
    adj: &mut [BTreeSet<u32>],
) {
    // closure[r] = bitset of routers reachable from r via adaptive channels
    // (including r itself), never entering the destination. Processed in
    // increasing distance order so successors are already final.
    let mut closure = vec![0u64; words * cfg.num_routers()];
    for &r in order {
        if r == dst_idx {
            continue;
        }
        let base = r * words;
        closure[base + (r >> 6)] |= 1 << (r & 63);
        for p in adap[r].into_iter().flatten() {
            let r2 = cfg.router_at(topology::step(cfg, cfg.router_coord(r), p));
            if r2 == dst_idx {
                continue;
            }
            let b2 = r2 * words;
            for w in 0..words {
                let bits = closure[b2 + w];
                closure[base + w] |= bits;
            }
        }
    }
    for (r, &e) in esc.iter().enumerate() {
        let Some((p, lane)) = e else { continue };
        let r2 = cfg.router_at(topology::step(cfg, cfg.router_coord(r), p));
        if r2 == dst_idx {
            continue;
        }
        let src = chan(lanes, r, p, lane as usize) as u32;
        let b2 = r2 * words;
        for w in 0..words {
            let mut bits = closure[b2 + w];
            while bits != 0 {
                let r3 = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if let Some((p3, lane3)) = esc[r3] {
                    adj[src as usize].insert(chan(lanes, r3, p3, lane3 as usize) as u32);
                }
            }
        }
    }
}

/// Add the direct adaptive-to-adaptive dependencies for one destination
/// (escape-disabled analysis; lane dimension unused — lane 0 throughout).
fn direct_adaptive_edges(
    cfg: &SimConfig,
    dst_idx: usize,
    adap: &[[Option<Port>; 2]],
    lanes: usize,
    adj: &mut [BTreeSet<u32>],
) {
    for (r, ports) in adap.iter().enumerate() {
        for p in ports.iter().flatten() {
            let r2 = cfg.router_at(topology::step(cfg, cfg.router_coord(r), *p));
            if r2 == dst_idx {
                continue;
            }
            for p2 in adap[r2].into_iter().flatten() {
                adj[chan(lanes, r, *p, 0)].insert(chan(lanes, r2, p2, 0) as u32);
            }
        }
    }
}

/// Iterative Tarjan SCC; returns the members of the first strongly
/// connected component that contains a cycle (size > 1, or a self-loop).
fn first_nontrivial_scc(adj: &[Vec<u32>]) -> Option<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let n = adj.len();
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        while let Some(&(v, ci)) = frames.last() {
            if ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                frames.last_mut().unwrap().1 += 1;
                let w = adj[v][ci] as usize;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 || adj[v].contains(&(v as u32)) {
                        return Some(comp);
                    }
                } else if let Some(&(u, _)) = frames.last() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    None
}

/// Extract one concrete cycle from a strongly connected component: BFS
/// within the component from an arbitrary member until an edge closes back
/// on it.
fn extract_cycle(adj: &[Vec<u32>], comp: &[usize]) -> Vec<usize> {
    let in_comp: BTreeSet<usize> = comp.iter().copied().collect();
    let s = comp[0];
    let mut parent = vec![usize::MAX; adj.len()];
    let mut seen: BTreeSet<usize> = BTreeSet::from([s]);
    let mut q = VecDeque::from([s]);
    while let Some(u) = q.pop_front() {
        for &w in &adj[u] {
            let w = w as usize;
            if w == s {
                let mut path = vec![u];
                let mut x = u;
                while x != s {
                    x = parent[x];
                    path.push(x);
                }
                path.reverse();
                return path;
            }
            if in_comp.contains(&w) && seen.insert(w) {
                parent[w] = u;
                q.push_back(w);
            }
        }
    }
    // Unreachable for a true SCC; fall back to listing the members.
    comp.to_vec()
}
