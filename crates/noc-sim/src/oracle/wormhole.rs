//! Wormhole contiguity: per-VC flit ordering, the single-holder rule of
//! atomic VCs, and the consistency of the incremental occupancy summary.

use super::{Checker, OracleViolation};
use crate::network::Network;
use crate::vc::VcState;

/// Structural checks over every input VC:
///
/// * occupied ⇔ a holder application is recorded (atomic VCs: one packet
///   owns the VC from its head arriving to its tail departing),
/// * all buffered flits belong to the holder's packet, with strictly
///   consecutive sequence numbers and head/body/tail kinds matching their
///   position in the packet,
/// * a VC that has not yet been switch-allocated still holds its head flit
///   at the front (flits never overtake within a packet),
/// * buffer depth and credit counters stay within `vc_depth`,
/// * the incremental occupancy summary (`occ_port`/`occ_vcs`) and the
///   network's active bitmask agree with an exhaustive recount — the
///   soundness condition of the active-set fast path.
#[derive(Debug, Default)]
pub struct WormholeContiguity;

impl Checker for WormholeContiguity {
    fn name(&self) -> &'static str {
        "wormhole-contiguity"
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        let cfg = &net.cfg;
        let cycle = net.cycle();
        let mut flag = |router, detail: String| {
            out.push(OracleViolation {
                cycle,
                checker: "wormhole-contiguity",
                router: Some(router),
                detail,
            });
        };
        for (i, r) in net.routers.iter().enumerate() {
            for (port, vcs) in r.inputs.iter().enumerate() {
                for (vc, ivc) in vcs.iter().enumerate() {
                    let at = |what: &str| format!("input ({port}, {vc}): {what}");
                    if ivc.occupied() != ivc.holder.is_some() {
                        flag(
                            r.id,
                            at(&format!(
                                "holder {:?} disagrees with occupancy {}",
                                ivc.holder,
                                ivc.occupied()
                            )),
                        );
                    }
                    if ivc.buf.len() > cfg.vc_depth {
                        flag(r.id, at(&format!("buffer holds {} flits", ivc.buf.len())));
                    }
                    if r.credits[port][vc] > cfg.vc_depth {
                        flag(r.id, at(&format!("credit counter {}", r.credits[port][vc])));
                    }
                    let mut prev_seq = None;
                    for f in &ivc.buf {
                        if Some(f.info.app) != ivc.holder
                            || ivc.buf.front().map(|h| h.info.id) != Some(f.info.id)
                        {
                            flag(
                                r.id,
                                at(&format!(
                                    "flit of packet {} (app {}) in a VC held by {:?}",
                                    f.info.id, f.info.app, ivc.holder
                                )),
                            );
                        }
                        if let Some(p) = prev_seq {
                            if f.seq != p + 1 {
                                flag(r.id, at(&format!("seq {} follows seq {p}", f.seq)));
                            }
                        }
                        prev_seq = Some(f.seq);
                        let last = f.info.size - 1;
                        let kind_ok = (f.kind.is_head() == (f.seq == 0))
                            && (f.kind.is_tail() == (f.seq == last))
                            && f.seq <= last;
                        if !kind_ok {
                            flag(
                                r.id,
                                at(&format!(
                                    "{:?} flit at seq {}/{} of packet {}",
                                    f.kind, f.seq, f.info.size, f.info.id
                                )),
                            );
                        }
                    }
                    // Until switch allocation, the head must lead the buffer.
                    if ivc.state == VcState::Idle || matches!(ivc.state, VcState::Routed { .. }) {
                        if let Some(front) = ivc.buf.front() {
                            if !front.kind.is_head() {
                                flag(
                                    r.id,
                                    at(&format!(
                                        "front flit is {:?} (seq {}) before allocation",
                                        front.kind, front.seq
                                    )),
                                );
                            }
                        }
                    }
                }
            }
            let (per_port, total) = r.recount_occupancy_summary();
            if per_port != r.occ_port || total != r.occ_vcs {
                flag(
                    r.id,
                    format!(
                        "occupancy summary {:?}/{} drifted from recount {:?}/{}",
                        r.occ_port, r.occ_vcs, per_port, total
                    ),
                );
            }
            if net.router_is_active(i) != (total > 0) {
                flag(
                    r.id,
                    format!(
                        "active bit {} disagrees with {} occupied VCs",
                        net.router_is_active(i),
                        total
                    ),
                );
            }
        }
    }
}
