//! # rair — Region-Aware Interference Reduction
//!
//! The primary contribution of *"RAIR: Interference Reduction in
//! Regionalized Networks-on-Chip"* (Chen, Hwang, Pinkston — IPDPS 2013),
//! implemented as a priority policy for the `noc-sim` router pipeline.
//!
//! RAIR reduces interference between concurrently running applications on a
//! regionalized NoC **without restricting traffic patterns**, through three
//! cooperating mechanisms:
//!
//! 1. **VC regionalization** ([`msp`], [`policy`]) — virtual channels carry
//!    a 1-bit regional/global tag. Any traffic may use any VC, but global
//!    VCs always prioritize foreign (inter-region) traffic, while regional
//!    VCs follow the dynamic priority. No VC is ever idled by the scheme.
//! 2. **Multi-stage prioritization** ([`msp::MspConfig`]) — the priority is
//!    enforced at VA_out, SA_in and SA_out (VA_in has no flow contention),
//!    configurably per stage for the Fig. 9 ablation.
//! 3. **Dynamic priority adaptation** ([`dpa::DpaMode`]) — per-router
//!    occupancy registers `OVC_n`/`OVC_f` plus a ±Δ hysteresis on their
//!    ratio decide whether native or foreign traffic is prioritized,
//!    yielding starvation freedom through negative feedback.
//!
//! The crate also ships the named scheme/routing matrix of the paper's
//! evaluation ([`scheme`]) and the LBDR mapping-validity analysis of §III
//! ([`lbdr`]).
//!
//! ```
//! use rair::prelude::*;
//!
//! let scheme = Scheme::rair();
//! let policy = scheme.build(); // Box<dyn PriorityPolicy> for Network::new
//! assert_eq!(policy.name(), "RA_RAIR");
//! ```

#![forbid(unsafe_code)]

pub mod dpa;
pub mod lbdr;
pub mod msp;
pub mod policy;
pub mod scheme;
pub mod verify;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::dpa::{DpaMode, DEFAULT_DELTA};
    pub use crate::msp::MspConfig;
    pub use crate::policy::RairPolicy;
    pub use crate::scheme::{Routing, Scheme};
}
