//! Deterministic dimension-order (XY) routing.

use super::{escape_port, RoutingAlgorithm, SelectCtx};
use crate::ids::{Coord, Port};

/// Pure XY: the single dimension-order port is offered on the adaptive VCs
/// as well, so all VCs are usable but no path diversity exists. Inherently
/// deadlock-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct XyRouting;

impl RoutingAlgorithm for XyRouting {
    fn name(&self) -> &'static str {
        "XY"
    }

    fn adaptive_ports(&self, cur: Coord, dst: Coord) -> [Option<Port>; 2] {
        [Some(escape_port(cur, dst)), None]
    }

    fn select(&self, _ctx: &SelectCtx<'_>, _cands: &[Port]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PORT_EAST, PORT_SOUTH};

    #[test]
    fn single_dor_candidate() {
        let r = XyRouting;
        let cur = Coord { x: 0, y: 0 };
        let dst = Coord { x: 3, y: 3 };
        assert_eq!(r.adaptive_ports(cur, dst), [Some(PORT_EAST), None]);
        let cur2 = Coord { x: 3, y: 0 };
        assert_eq!(r.adaptive_ports(cur2, dst), [Some(PORT_SOUTH), None]);
    }
}
