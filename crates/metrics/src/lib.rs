//! Streaming statistics, histograms and plain-text report tables used by the
//! RAIR reproduction.
//!
//! The simulator records one latency sample per delivered packet; experiment
//! drivers aggregate per-application and per-scheme results into tables that
//! mirror the rows/series of the paper's figures. Everything here is
//! allocation-light so it can be updated on the simulator's hot path.

#![forbid(unsafe_code)]

pub mod digest;
pub mod histogram;
pub mod latency;
pub mod report;
pub mod stats;
pub mod viz;

pub use digest::Digest;
pub use histogram::Histogram;
pub use latency::{LatencyKind, LatencyRecorder, PerAppLatency};
pub use report::Table;
pub use stats::Streaming;
