//! RO_Rank with *online* intensity estimation — an extension beyond the
//! paper.
//!
//! The paper evaluates an oracle STC that always knows the optimal
//! application ranking. A real deployment must estimate intensity at run
//! time; STC samples per-application L1 misses per interval through central
//! logic. Our simulator-level equivalent observes each application's
//! injection activity (occupied local-port VCs, sampled per router per
//! cycle) and recomputes the ranking every `interval` cycles: the
//! application with the least observed injection activity gets the best
//! rank, exactly mirroring the oracle's least-intensive-first rule.
//!
//! Shared estimation state lives behind a mutex; the simulator is
//! single-threaded per network, so the lock is uncontended.

use super::{ArbReq, ArbStage, PriorityPolicy};
use crate::ids::PORT_LOCAL;
use crate::router::Router;
use crate::vc::VcClass;
use std::sync::Mutex;

/// Default re-ranking interval in cycles.
pub const DEFAULT_RANK_INTERVAL: u64 = 2_000;

#[derive(Debug)]
struct OnlineState {
    /// Injection-activity samples per application in the current interval.
    counts: Vec<u64>,
    /// Current ranking (0 = highest priority).
    ranks: Vec<u16>,
    /// Cycle of the last re-ranking.
    last_rerank: u64,
    /// Number of re-rankings performed (introspection for tests).
    reranks: u64,
}

/// Application-aware ranked arbitration with online intensity estimation.
#[derive(Debug)]
pub struct StcRankOnline {
    batch_window: u64,
    interval: u64,
    state: Mutex<OnlineState>,
}

impl StcRankOnline {
    /// Create for `num_apps` applications. All applications start at equal
    /// rank (pure round-robin) until the first interval completes.
    pub fn new(num_apps: usize, batch_window: u64, interval: u64) -> Self {
        assert!(batch_window > 0 && interval > 0);
        Self {
            batch_window,
            interval,
            state: Mutex::new(OnlineState {
                counts: vec![0; num_apps],
                ranks: vec![0; num_apps],
                last_rerank: 0,
                reranks: 0,
            }),
        }
    }

    /// Current ranking snapshot (testing/diagnostics).
    pub fn ranks(&self) -> Vec<u16> {
        self.state.lock().unwrap().ranks.clone()
    }

    /// Number of re-rankings performed so far.
    pub fn reranks(&self) -> u64 {
        self.state.lock().unwrap().reranks
    }
}

impl PriorityPolicy for StcRankOnline {
    fn name(&self) -> &'static str {
        "RO_RankOnline"
    }

    fn priority(
        &self,
        _stage: ArbStage,
        _router: &Router,
        _out_vc: Option<VcClass>,
        req: &ArbReq,
    ) -> u64 {
        let st = self.state.lock().unwrap();
        let rank = st.ranks.get(req.app as usize).copied().unwrap_or(u16::MAX);
        drop(st);
        let batch = req.birth / self.batch_window;
        let batch_prio = (1u64 << 40) - batch.min((1 << 40) - 1);
        (batch_prio << 16) | (u16::MAX - rank) as u64
    }

    fn update_router(&self, router: &mut Router, cycle: u64) {
        let mut st = self.state.lock().unwrap();
        // Sample injection activity: which application holds each occupied
        // local-port VC of this router.
        for ivc in &router.inputs[PORT_LOCAL] {
            if !ivc.occupied() {
                continue;
            }
            if let Some(app) = ivc.holder_app() {
                if let Some(c) = st.counts.get_mut(app as usize) {
                    *c += 1;
                }
            }
        }
        if cycle.saturating_sub(st.last_rerank) >= self.interval {
            // Least-intensive application → rank 0 (STC's rule).
            let mut order: Vec<usize> = (0..st.counts.len()).collect();
            order.sort_by_key(|&a| st.counts[a]);
            for (rank, &app) in order.iter().enumerate() {
                st.ranks[app] = rank as u16;
            }
            st.counts.iter_mut().for_each(|c| *c = 0);
            st.last_rerank = cycle;
            st.reranks += 1;
        }
    }

    /// Sampling accumulates one observation per router per cycle, so the
    /// update must run even on cycles where nothing changed.
    fn update_is_idempotent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::flit::{Flit, FlitKind, PacketInfo};
    use crate::ids::AppId;

    fn router_with_local_holder(app: AppId) -> Router {
        let cfg = SimConfig::table1();
        let mut r = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        r.inputs[PORT_LOCAL][1].holder = Some(app);
        r.inputs[PORT_LOCAL][1].buf.push_back(Flit {
            kind: FlitKind::Single,
            seq: 0,
            hops: 0,
            payload: 0,
            crc: crate::flit::crc16(0),
            info: PacketInfo {
                id: 0,
                src: 0,
                dst: 1,
                app,
                class: 0,
                size: 1,
                birth: 0,
                inject: 0,
                reply: None,
            },
        });
        r
    }

    #[test]
    fn starts_with_equal_ranks() {
        let p = StcRankOnline::new(3, 1000, 500);
        assert_eq!(p.ranks(), vec![0, 0, 0]);
        assert_eq!(p.reranks(), 0);
    }

    #[test]
    fn opts_out_of_update_skipping() {
        // Sampling is time-dependent: skipping update_router on quiet
        // cycles would bias the intensity estimate.
        assert!(!StcRankOnline::new(2, 1000, 500).update_is_idempotent());
    }

    #[test]
    fn learns_intensity_ordering() {
        let p = StcRankOnline::new(2, 1000, 100);
        let mut heavy = router_with_local_holder(1);
        let mut light = router_with_local_holder(0);
        // App 1 injects 5x as often as app 0.
        for cycle in 0..100u64 {
            p.update_router(&mut heavy, cycle);
            if cycle % 5 == 0 {
                p.update_router(&mut light, cycle);
            }
        }
        // Trigger the re-rank.
        let cfg = SimConfig::table1();
        let mut idle = Router::new(&cfg, 2, cfg.coord_of(2), 0);
        p.update_router(&mut idle, 100);
        assert_eq!(p.reranks(), 1);
        let ranks = p.ranks();
        assert!(
            ranks[0] < ranks[1],
            "light app must outrank heavy: {ranks:?}"
        );
    }

    #[test]
    fn rank_feeds_priority() {
        let p = StcRankOnline::new(2, 1000, 10);
        // Force ranks by feeding samples then re-ranking.
        let mut heavy = router_with_local_holder(1);
        for cycle in 0..=10u64 {
            p.update_router(&mut heavy, cycle);
        }
        assert_eq!(p.reranks(), 1);
        let cfg = SimConfig::table1();
        let r = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        let req = |app: AppId| ArbReq {
            app,
            class: 0,
            birth: 0,
            inject: 0,
            is_native: true,
        };
        let light_prio = p.priority(ArbStage::SaIn, &r, None, &req(0));
        let heavy_prio = p.priority(ArbStage::SaIn, &r, None, &req(1));
        assert!(light_prio > heavy_prio);
    }

    #[test]
    fn counts_reset_each_interval() {
        let p = StcRankOnline::new(2, 1000, 10);
        let mut r0 = router_with_local_holder(0);
        for cycle in 0..=10u64 {
            p.update_router(&mut r0, cycle);
        }
        // First interval: app 0 heavy → worst rank.
        assert_eq!(p.ranks()[0], 1);
        // Second interval: app 1 heavy → ranking flips.
        let mut r1 = router_with_local_holder(1);
        for cycle in 11..=21u64 {
            p.update_router(&mut r1, cycle);
        }
        assert_eq!(p.reranks(), 2);
        assert_eq!(p.ranks()[0], 0);
        assert_eq!(p.ranks()[1], 1);
    }

    #[test]
    fn unknown_app_gets_worst_priority() {
        let p = StcRankOnline::new(2, 1000, 10);
        let cfg = SimConfig::table1();
        let r = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        let adversary = ArbReq {
            app: 200,
            class: 0,
            birth: 0,
            inject: 0,
            is_native: false,
        };
        let known = ArbReq {
            app: 0,
            ..adversary
        };
        assert!(
            p.priority(ArbStage::SaIn, &r, None, &known)
                > p.priority(ArbStage::SaIn, &r, None, &adversary)
        );
    }
}
