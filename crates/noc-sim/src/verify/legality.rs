//! Region / restriction legality: every source must retain a minimal legal
//! path to every destination under the link restrictions in force.

use super::cdg::Violations;
use super::{Verifier, Witness};
use crate::config::SimConfig;
use crate::ids::{NodeId, Port};
use crate::routing::step;

/// Check one destination. `adap`/`esc` hold the already-validated usable
/// hops per router (minimal, in-bounds, link-filtered); `order` lists
/// routers in increasing hop distance from the destination, so a single
/// dynamic-programming pass settles reachability (every usable hop moves
/// strictly closer). Pair-filtered-out holders are exempt.
pub(super) fn check_dst(
    cfg: &SimConfig,
    v: &Verifier<'_>,
    dst_idx: usize,
    order: &[usize],
    adap: &[[Option<Port>; 2]],
    esc: &[Option<Port>],
    vio: &mut Violations,
) {
    let mut reach = vec![false; cfg.num_nodes()];
    reach[dst_idx] = true;
    for &r in order {
        if r == dst_idx || !v.pair_usable(r as NodeId, dst_idx as NodeId) {
            continue;
        }
        let cur = cfg.coord_of(r as NodeId);
        let hop_ok = |p: Port| reach[cfg.node_at(step(cur, p)) as usize];
        reach[r] = adap[r].into_iter().flatten().any(hop_ok) || esc[r].is_some_and(hop_ok);
        if !reach[r] {
            vio.record(
                "region-legality",
                Witness::UnreachablePair {
                    src: r as NodeId,
                    dst: dst_idx as NodeId,
                },
            );
        }
    }
}
