//! Load-latency curves — the standard NoC characterization underlying the
//! paper's "% of saturation load" methodology (§V.A). Not a numbered
//! figure, but the curve makes the measured saturation loads (and the knee
//! behavior every scenario is positioned against) reproducible and
//! inspectable.

use crate::runner::{run_one, run_parallel, ExpConfig, Job};
use crate::sweep::build_network;
use metrics::report::f2;
use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use rair::scheme::{Routing, Scheme};
use traffic::pattern::Pattern;
use traffic::scenario::{AppSpec, InterDest, Scenario};

/// One load-latency curve.
#[derive(Debug, Clone)]
pub struct Curve {
    pub pattern: String,
    /// `(offered flits/cycle/node, mean network APL, mean total APL,
    /// delivered throughput)` points; latency is `None` past saturation
    /// collapse (nothing delivered).
    pub points: Vec<(f64, Option<f64>, Option<f64>, f64)>,
    /// Points run with shortened confirmation windows because the
    /// analytical model classified them as deep-in-saturation or
    /// trivially stable (0 unless [`ExpConfig::prune`] is set).
    pub pruned: usize,
}

/// Pruning classification bands relative to the model-predicted saturation
/// load: points above `DEEP_SATURATED_FRAC ×` prediction are far past the
/// knee (latency has already collapsed), points below
/// `TRIVIALLY_STABLE_FRAC ×` are far below it (latency is pinned at
/// zero-load) — both get `1/PRUNE_DIVISOR`-length confirmation windows.
const DEEP_SATURATED_FRAC: f64 = 1.3;
const TRIVIALLY_STABLE_FRAC: f64 = 0.25;
const PRUNE_DIVISOR: u64 = 4;

/// The model's saturation prediction for the chip-wide curve config, used
/// to classify prunable points. `None` when pruning is off or the model
/// has no prediction (every point then runs full-length).
fn prune_threshold(ec: &ExpConfig, pattern: &Pattern) -> Option<f64> {
    if !ec.prune {
        return None;
    }
    let cfg = SimConfig::table1();
    let region = RegionMap::single(&cfg);
    let spec = AppSpec {
        rate_flits: 0.0,
        intra: 0.0,
        inter: 1.0,
        inter_dest: InterDest::Pattern(pattern.clone()),
        mc: 0.0,
    };
    model::predict_app_saturation(&cfg, &region, 0, &spec, model::RoutingKind::Adaptive)
        .map(|p| p.load)
}

/// Sweep offered load for a chip-wide pattern under RO_RR + local adaptive
/// routing (the reference configuration used for saturation search).
pub fn run(ec: &ExpConfig, pattern: Pattern, max_rate: f64, steps: usize) -> Curve {
    let predicted = prune_threshold(ec, &pattern);
    let mut pruned = 0usize;
    let jobs: Vec<Job> = (1..=steps)
        .map(|i| {
            let rate = max_rate * i as f64 / steps as f64;
            let mut ec = *ec;
            if let Some(sat) = predicted {
                if rate > DEEP_SATURATED_FRAC * sat || rate < TRIVIALLY_STABLE_FRAC * sat {
                    pruned += 1;
                    ec.warmup = (ec.warmup / PRUNE_DIVISOR).max(1);
                    ec.measure = (ec.measure / PRUNE_DIVISOR).max(1);
                }
            }
            let pattern = pattern.clone();
            let job = Job::new(format!("curve/rate={rate:.3}"), move || {
                let cfg = SimConfig::table1();
                let region = RegionMap::single(&cfg);
                let spec = AppSpec {
                    rate_flits: rate,
                    intra: 0.0,
                    inter: 1.0,
                    inter_dest: InterDest::Pattern(pattern.clone()),
                    mc: 0.0,
                };
                let scenario = Scenario::new(&cfg, &region, vec![Some(spec)]);
                let net = build_network(
                    &cfg,
                    &region,
                    &Scheme::RoRr,
                    Routing::Local,
                    Box::new(scenario),
                    ec.seed,
                );
                run_one(format!("{rate:.3}"), net, &ec)
            });
            job
        })
        .collect();
    let results = run_parallel(jobs);
    Curve {
        pattern: pattern_label(&pattern),
        points: results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let rate = max_rate * (i + 1) as f64 / steps as f64;
                (rate, r.apl[0], r.total_latency[0], r.throughput)
            })
            .collect(),
        pruned,
    }
}

fn pattern_label(p: &Pattern) -> String {
    p.label().to_string()
}

/// Render the curve with a latency sparkline.
pub fn table(c: &Curve) -> Table {
    let pruned = if c.pruned > 0 {
        format!(", {} of {} points pruned", c.pruned, c.points.len())
    } else {
        String::new()
    };
    let mut t = Table::new(
        format!(
            "Load-latency curve — {} (RO_RR, local adaptive{pruned})",
            c.pattern
        ),
        &["offered", "APL(net)", "APL(total)", "throughput"],
    );
    for (rate, net, total, thpt) in &c.points {
        t.row(vec![
            format!("{rate:.3}"),
            net.map_or("—".into(), f2),
            total.map_or("—".into(), f2),
            format!("{thpt:.3}"),
        ]);
    }
    t
}

/// The knee estimate: first offered load where total latency exceeds
/// 3× the first point's latency (or the last stable point).
pub fn knee(c: &Curve) -> Option<f64> {
    let base = c.points.first()?.2?;
    for (rate, _, total, _) in &c.points {
        match total {
            Some(t) if *t > 3.0 * base => return Some(*rate),
            None => return Some(*rate),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_enough_and_has_a_knee() {
        let ec = ExpConfig {
            warmup: 1_000,
            measure: 5_000,
            seed: 3,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        let c = run(&ec, Pattern::UniformRandom, 0.6, 6);
        assert_eq!(c.points.len(), 6);
        // Latency at the lightest load is near zero-load (~20 cycles).
        let first = c.points[0].1.unwrap();
        assert!((10.0..40.0).contains(&first), "zero-load APL {first}");
        // Throughput rises with offered load up to saturation.
        assert!(c.points[2].3 > c.points[0].3);
        // A knee exists below the 0.6 ceiling for UR on an 8x8 mesh.
        let k = knee(&c).expect("no knee found");
        assert!((0.1..=0.6).contains(&k), "knee {k}");
        // And the rendered table has one row per point.
        assert_eq!(table(&c).num_rows(), 6);
    }

    #[test]
    fn pruned_curve_shortens_extreme_points_and_keeps_the_knee() {
        let ec = ExpConfig {
            warmup: 1_000,
            measure: 5_000,
            seed: 3,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        let full = run(&ec, Pattern::UniformRandom, 0.6, 6);
        assert_eq!(full.pruned, 0, "pruning must be opt-in");
        let pruned = run(
            &ExpConfig { prune: true, ..ec },
            Pattern::UniformRandom,
            0.6,
            6,
        );
        // UR saturates near 0.35; the 0.5/0.6 points are deep-saturated
        // and the 0.1 point trivially stable, so something gets pruned.
        assert!(pruned.pruned > 0, "no points pruned");
        assert!(pruned.pruned < pruned.points.len(), "everything pruned");
        assert_eq!(pruned.points.len(), full.points.len());
        // The knee survives confirmation-length runs.
        let (kf, kp) = (knee(&full).unwrap(), knee(&pruned).unwrap());
        assert!(
            (kf - kp).abs() < 0.21,
            "knee moved too far: full {kf} pruned {kp}"
        );
        // And the rendered title reports the pruned count.
        assert!(table(&pruned).render().contains("pruned"));
    }
}
