//! Adversarial traffic injection (§V.G of the paper).
//!
//! Models "an elaborated attack, or simply an OS bug": chip-wide uniform
//! random traffic at a fixed flit rate, injected from every node under an
//! application id that owns no region — so it is foreign traffic everywhere,
//! which is exactly how RAIR's DPA identifies and deprioritizes it.

use crate::scenario::AVG_PACKET_FLITS;
use noc_sim::flit::PacketInfo;
use noc_sim::ids::NodeId;
use noc_sim::source::{NewPacket, TrafficSource};
use rand::rngs::SmallRng;
use rand::Rng;

/// Wraps a workload and superimposes chip-wide adversarial traffic.
///
/// The inner workload generates first (its offered load is preserved — we
/// measure *its* slowdown); the adversary fills the remaining generation
/// slots, reaching marginally less than its nominal rate when the inner
/// workload collides on the same node-cycle. The adversarial application id
/// is `inner.num_apps()`.
pub struct Adversarial<S> {
    inner: S,
    /// Adversarial load in flits/cycle/node.
    pub rate_flits: f64,
    num_nodes: u16,
    long_flits: u32,
}

impl<S: TrafficSource> Adversarial<S> {
    /// Superimpose `rate_flits` flits/cycle/node of chip-wide uniform
    /// random traffic (the paper uses 0.4).
    pub fn new(inner: S, rate_flits: f64, num_nodes: u16, long_flits: u32) -> Self {
        Self {
            inner,
            rate_flits,
            num_nodes,
            long_flits,
        }
    }

    /// The adversary's application id.
    pub fn adversary_app(&self) -> u8 {
        self.inner.num_apps() as u8
    }
}

impl<S: TrafficSource> TrafficSource for Adversarial<S> {
    fn num_apps(&self) -> usize {
        self.inner.num_apps() + 1
    }

    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if let Some(p) = self.inner.generate(node, cycle, rng) {
            return Some(p);
        }
        let prob = (self.rate_flits / AVG_PACKET_FLITS).min(1.0);
        if prob == 0.0 || !rng.random_bool(prob) {
            return None;
        }
        let mut dst = rng.random_range(0..self.num_nodes - 1);
        if dst >= node {
            dst += 1;
        }
        Some(NewPacket {
            dst,
            app: self.inner.num_apps() as u8,
            class: 0,
            size: if rng.random_bool(0.5) {
                1
            } else {
                self.long_flits
            },
            reply: None,
        })
    }

    fn on_delivered(&mut self, node: NodeId, info: &PacketInfo, cycle: u64) {
        if (info.app as usize) < self.inner.num_apps() {
            self.inner.on_delivered(node, info, cycle);
        }
    }

    fn next_injection_cycle(&self, now: u64) -> Option<u64> {
        // An active adversary is a Bernoulli process: it consults the RNG
        // every node-cycle, so elided calls would desynchronize the stream.
        if self.rate_flits > 0.0 {
            return None;
        }
        self.inner.next_injection_cycle(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::source::NoTraffic;
    use rand::SeedableRng;

    #[test]
    fn adversary_rate_and_app_id() {
        let mut adv = Adversarial::new(NoTraffic, 0.4, 64, 5);
        assert_eq!(adv.num_apps(), 2);
        assert_eq!(adv.adversary_app(), 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut flits = 0u64;
        let cycles = 30_000u64;
        for cyc in 0..cycles {
            if let Some(p) = adv.generate(7, cyc, &mut rng) {
                assert_eq!(p.app, 1);
                assert_ne!(p.dst, 7);
                flits += p.size as u64;
            }
        }
        let rate = flits as f64 / cycles as f64;
        assert!((rate - 0.4).abs() < 0.05, "adversarial rate {rate}");
    }

    #[test]
    fn inner_traffic_takes_precedence() {
        use noc_sim::source::ScriptedSource;
        let pkt = NewPacket {
            dst: 3,
            app: 0,
            class: 0,
            size: 1,
            reply: None,
        };
        let inner = ScriptedSource::new(1, vec![(5, 0, pkt)]);
        let mut adv = Adversarial::new(inner, 1.0, 64, 5);
        let mut rng = SmallRng::seed_from_u64(2);
        // At cycle 5 on node 0 the scripted packet must come through.
        let got = adv.generate(0, 5, &mut rng).unwrap();
        assert_eq!(got.app, 0);
        assert_eq!(got.dst, 3);
    }

    #[test]
    fn zero_rate_adversary_is_silent() {
        let mut adv = Adversarial::new(NoTraffic, 0.0, 64, 5);
        let mut rng = SmallRng::seed_from_u64(3);
        for cyc in 0..1000 {
            assert!(adv.generate(0, cyc, &mut rng).is_none());
        }
    }
}
