//! Fault-resilience tests: link-level retransmission, fault-aware reroute
//! with static re-verification, and drop accounting.
//!
//! The conservation statement "injected = ejected + in-network + dropped"
//! (modulo the drop ledger) is enforced by the oracle's per-cycle
//! conservation checkers; every dynamic test here runs with the oracle
//! force-enabled at `check_interval: 1`, so "zero oracle violations" *is*
//! the conservation-modulo-ledger assertion.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use proptest::prelude::*;
use rair::prelude::*;
use std::collections::BTreeSet;
use traffic::prelude::*;

/// Oracle force-enabled, recording (not panicking), checking every cycle.
fn oracle_cfg() -> SimConfig {
    let mut cfg = SimConfig::table1();
    cfg.oracle = OracleConfig {
        enabled: Some(true),
        panic_on_violation: Some(false),
        check_interval: 1,
        stall_horizon: 25_000,
        ..OracleConfig::default()
    };
    cfg
}

/// Mesh ports whose link exists at `router` on the Table 1 8x8 mesh.
fn in_bounds_ports(cfg: &SimConfig, router: NodeId) -> Vec<Port> {
    let c = cfg.coord_of(router);
    let mut ports = Vec::new();
    if c.y > 0 {
        ports.push(1); // north
    }
    if c.x + 1 < cfg.width {
        ports.push(2); // east
    }
    if c.y + 1 < cfg.height {
        ports.push(3); // south
    }
    if c.x > 0 {
        ports.push(4); // west
    }
    ports
}

/// Both directions of the link out of `router` through `port`, mirroring
/// how the kernel registers a `LinkDown` event.
fn link_pair(cfg: &SimConfig, router: NodeId, port: Port) -> BTreeSet<(usize, Port)> {
    let nbr = cfg.node_at(noc_sim::routing::step(cfg.coord_of(router), port));
    let opp = match port {
        1 => 3,
        2 => 4,
        3 => 1,
        _ => 2,
    };
    [(router as usize, port), (nbr as usize, opp)]
        .into_iter()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single permanent link failure, on any rectangular region grid,
    /// yields a reconfigured routing table that passes the static CDG /
    /// reachability verifier (ISSUE acceptance: re-verified deadlock-free
    /// before traffic resumes).
    #[test]
    fn single_link_failure_reverifies(
        router in 0u16..64,
        port_pick in 0usize..4,
        cols in prop_oneof![Just(1u8), Just(2), Just(4)],
        rows in prop_oneof![Just(1u8), Just(2), Just(4)],
    ) {
        let cfg = SimConfig::table1();
        let ports = in_bounds_ports(&cfg, router);
        let port = ports[port_pick % ports.len()];
        let region = RegionMap::grid(&cfg, cols, rows);
        let dead_links = link_pair(&cfg, router, port);
        let (table, report) = DegradedTable::rebuild(
            &cfg,
            &region,
            &DuatoLocalAdaptive,
            &dead_links,
            &BTreeSet::new(),
        );
        prop_assert!(
            report.ok(),
            "degraded table ({:?}) failed verification: {:?}",
            table.mode(),
            report.violations.first()
        );
        // A single dead link never disconnects a 2D mesh: every pair must
        // stay routable.
        for s in 0..cfg.num_nodes() {
            for d in 0..cfg.num_nodes() {
                prop_assert!(table.routable(s, d), "{s}->{d} unroutable");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A mid-run link kill under load: the run completes with zero oracle
    /// violations — flit/credit conservation hold modulo the drop ledger —
    /// and the reconfiguration is re-verified (no static violations
    /// recorded either).
    #[test]
    fn link_kill_mid_run_conserves(
        router in 0u16..64,
        port_pick in 0usize..4,
        p in prop_oneof![Just(0.5f64), Just(1.0)],
        seed in 0u64..50,
    ) {
        let mut cfg = oracle_cfg();
        let port = {
            let ports = in_bounds_ports(&cfg, router);
            ports[port_pick % ports.len()]
        };
        cfg.fault = FaultTimeline {
            transient_ber: 0.0,
            seed: seed ^ 0xFA11,
            events: vec![ScheduledFault {
                cycle: 400,
                event: FaultEvent::LinkDown { router, port },
            }],
        };
        let (region, scenario) = two_app(&cfg, p, 0.04, 0.15);
        let mut net = Network::new(
            cfg.clone(),
            region,
            Routing::Local.build(),
            Scheme::rair().build(),
            Box::new(scenario),
            seed,
        );
        net.run(1_500);
        net.check_oracle_now();
        prop_assert_eq!(
            net.stats.oracle_violation_count, 0,
            "oracle violations: {:?}", net.stats.oracle_violations
        );
        prop_assert_eq!(net.stats.reconfigurations, 1);
        prop_assert_eq!(
            net.stats.verify_violation_count, 0,
            "degraded routing failed re-verification: {:?}",
            net.stats.verify_violations
        );
        prop_assert!(net.degraded_mode().is_some());
        prop_assert!(net.stats.ejected_flits > 0, "no traffic moved");
    }
}

/// Pure transient faults are latency, not loss: with a 1% per-traversal
/// corruption rate, every scripted packet is still delivered exactly once
/// and nothing is dropped — the link-level retransmission absorbs every
/// error.
#[test]
fn transient_errors_are_latency_not_loss() {
    let mut cfg = oracle_cfg();
    cfg.fault = FaultTimeline {
        transient_ber: 0.01,
        seed: 99,
        events: Vec::new(),
    };
    let mut events = Vec::new();
    let mut count = 0u64;
    for i in 0..40u64 {
        let src = (i * 7 + 3) % 64;
        let dst = (i * 13 + 31) % 64;
        if src == dst {
            continue;
        }
        events.push((
            i * 5,
            src as NodeId,
            NewPacket {
                dst: dst as NodeId,
                app: 0,
                class: 0,
                size: 4,
                reply: None,
            },
        ));
        count += 1;
    }
    let mut net = Network::new(
        cfg.clone(),
        RegionMap::single(&cfg),
        Routing::Local.build(),
        Scheme::RoRr.build(),
        Box::new(ScriptedSource::new(1, events)),
        5,
    );
    net.run(6_000);
    assert!(net.is_drained(), "{} flits stuck", net.flits_in_network());
    assert_eq!(net.stats.recorder.delivered(), count);
    assert_eq!(net.stats.packets_dropped, 0);
    assert_eq!(net.stats.reconfigurations, 0);
    assert!(
        net.stats.flits_retransmitted > 0,
        "1% BER over {} flits exercised no retransmissions",
        net.stats.injected_flits
    );
    net.check_oracle_now();
    assert_eq!(
        net.stats.oracle_violation_count, 0,
        "{:?}",
        net.stats.oracle_violations
    );
}

/// A router death mid-run: traffic to/from the dead router is dropped and
/// accounted, everything else keeps flowing, and conservation (modulo the
/// ledger) holds throughout. Router kills force Strict mode.
#[test]
fn router_kill_degrades_gracefully() {
    let mut cfg = oracle_cfg();
    cfg.fault = FaultTimeline {
        transient_ber: 0.0,
        seed: 0,
        events: vec![ScheduledFault {
            cycle: 500,
            event: FaultEvent::RouterDown { router: 27 },
        }],
    };
    let (region, scenario) = two_app(&cfg, 1.0, 0.04, 0.15);
    let mut net = Network::new(
        cfg.clone(),
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        11,
    );
    net.run(2_500);
    net.check_oracle_now();
    assert_eq!(
        net.stats.oracle_violation_count, 0,
        "{:?}",
        net.stats.oracle_violations
    );
    assert_eq!(net.stats.reconfigurations, 1);
    assert_eq!(net.degraded_mode(), Some(DegradedMode::Strict));
    assert_eq!(
        net.stats.verify_violation_count, 0,
        "{:?}",
        net.stats.verify_violations
    );
    // The dead router's NI stops injecting, and packets addressed to it
    // are dropped (at generation or by the stranded sweep) — the ledger
    // must show that traffic loss.
    assert!(net.stats.packets_dropped > 0, "no drops recorded");
    // The rest of the mesh keeps delivering after the kill.
    let delivered_at_kill = net.stats.recorder.delivered();
    net.run(500);
    assert!(net.stats.recorder.delivered() > delivered_at_kill);
}

/// The ISSUE acceptance run: transient CRC errors at 1e-3/flit-traversal
/// plus one permanent link kill mid-run. The run completes with zero
/// oracle violations, the degraded topology re-verifies deadlock-free,
/// and the delivered fraction stays >= 0.99.
#[test]
fn acceptance_ber_plus_link_kill() {
    let mut cfg = oracle_cfg();
    cfg.fault = FaultTimeline {
        transient_ber: 1e-3,
        seed: 0xBEEF,
        events: vec![ScheduledFault {
            cycle: 1_000,
            event: FaultEvent::LinkDown {
                router: 27,
                port: 2,
            },
        }],
    };
    let (region, scenario) = two_app(&cfg, 1.0, 0.04, 0.15);
    let mut net = Network::new(
        cfg.clone(),
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        0xC0FFEE,
    );
    net.run(4_000);
    net.check_oracle_now();
    assert_eq!(
        net.stats.oracle_violation_count, 0,
        "{:?}",
        net.stats.oracle_violations
    );
    assert_eq!(net.stats.reconfigurations, 1);
    assert_eq!(
        net.stats.verify_violation_count, 0,
        "degraded topology failed re-verification: {:?}",
        net.stats.verify_violations
    );
    assert!(
        net.stats.flits_retransmitted > 0,
        "BER 1e-3 exercised no retransmissions"
    );
    let delivered = net.stats.recorder.delivered();
    let lost = net.stats.packets_dropped;
    let fraction = delivered as f64 / (delivered + lost) as f64;
    assert!(
        fraction >= 0.99,
        "delivered fraction {fraction:.4} ({delivered} delivered, {lost} dropped)"
    );
}

/// The fault subsystem is deterministic: the same timeline and seeds
/// reproduce the same end-state digest, including retransmission counts,
/// drops, and reconfigurations.
#[test]
fn faulty_runs_are_deterministic() {
    let run = || {
        let mut cfg = SimConfig::table1();
        cfg.fault = FaultTimeline {
            transient_ber: 1e-3,
            seed: 7,
            events: vec![ScheduledFault {
                cycle: 300,
                event: FaultEvent::LinkDown {
                    router: 35,
                    port: 1,
                },
            }],
        };
        let (region, scenario) = two_app(&cfg, 0.5, 0.04, 0.15);
        let mut net = Network::new(
            cfg.clone(),
            region,
            Routing::Local.build(),
            Scheme::rair().build(),
            Box::new(scenario),
            42,
        );
        net.run(1_200);
        (
            net.stats.digest(),
            net.stats.flits_retransmitted,
            net.stats.packets_dropped,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "faulty run is not reproducible");
    assert!(a.1 > 0, "control: the timeline must actually fire");
}
